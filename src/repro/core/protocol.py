"""Whole-network harness: chain + contract + peers + overlay + miner.

:class:`WakuRlnRelayNetwork` assembles everything a simulation needs —
used by the integration tests, the examples and every benchmark. The
flow matches the paper's deployment story:

1. deploy the membership contract (registry by default);
2. create peers, each with an Ethereum account and an RLN credential;
3. peers submit registration transactions; a miner process seals blocks
   every ``block_interval`` simulated seconds; peers pick up the
   emitted events and converge on the same membership tree;
4. the GossipSub overlay is wired (random-regular by default) and
   heartbeats start;
5. peers publish; routers validate; spammers get slashed.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from ..constants import ETH_BLOCK_INTERVAL_SECONDS
from ..crypto.keys import IdentityCommitment, MembershipKeyPair
from ..errors import NetworkError, RegistrationError
from ..eth.chain import Blockchain
from ..eth.contracts import MembershipRegistry, OnChainTreeContract
from ..net.network import Network, NodeId
from ..net.topology import connect_full_mesh, connect_random_regular
from ..rln.membership import MembershipStore
from ..rln.prover import rln_keys
from ..rln.verifier import BarrierMemoCache, VerificationCache
from ..sim.latency import LatencyModel, UniformLatency
from ..sim.metrics import MetricsRegistry
from ..sim.parallel_stack import WindowedStackSimulator
from ..sim.shards import ShardedSimulator, ShardPlan
from ..sim.simulator import Simulator
from .config import ProtocolConfig
from .peer import WakuRlnRelayPeer

CONTRACT_ADDRESS = "contract:membership"


def genesis_commitments(count: int, seed: int = 0) -> tuple:
    """Deterministic identity commitments for a genesis member list.

    Dormant identities never publish, so they need no key material —
    only distinct non-zero field elements for the membership leaves.
    Derived with blake2b directly (not the configured circuit hash):
    the genesis list is deployment *data*, and a million-entry list
    must not cost a million poseidon permutations under the slow
    backend nor perturb ``hash_call_count`` accounting.
    """
    from hashlib import blake2b

    from ..crypto.field import Fr

    prefix = b"genesis-member:%d:" % seed
    out = []
    for i in range(count):
        digest = blake2b(
            prefix + str(i).encode(), digest_size=32
        ).digest()
        out.append(Fr(int.from_bytes(digest, "big"))._value or 1)
    return tuple(out)


class WakuRlnRelayNetwork:
    """A ready-to-run Waku-RLN-Relay deployment in one object."""

    def __init__(
        self,
        peer_count: int,
        config: Optional[ProtocolConfig] = None,
        seed: int = 0,
        degree: Optional[int] = 6,
        latency: Optional[LatencyModel] = None,
        block_interval: float = ETH_BLOCK_INTERVAL_SECONDS,
        shards: int = 1,
        parallel: bool = False,
        parallel_window: Optional[float] = None,
        shard_pins: Optional[Dict[str, int]] = None,
        pre_registered: int = 0,
        owned_shards: Optional[FrozenSet[int]] = None,
    ) -> None:
        self.config = config or ProtocolConfig()
        self.pre_registered = pre_registered
        self.parallel = parallel
        if owned_shards is not None and not parallel:
            raise NetworkError("owned_shards requires parallel mode")
        latency = latency or UniformLatency(base_seconds=0.03)
        peer_ids = [f"peer-{i}" for i in range(peer_count)]
        if parallel:
            # Window-isolated kernel: per-entity order keys and RNG
            # streams, barrier windows bounded by the minimum latency,
            # ports for cross-worker delivery. Results are invariant
            # in shards *and* workers (the test matrix pins this) but
            # intentionally a distinct mode from the lockstep-merge
            # kernels: per-entity streams change individual draws.
            window = parallel_window
            if window is None:
                window = latency.min_latency()
            if window <= 0:
                raise NetworkError(
                    "parallel mode needs a positive barrier window; "
                    f"{type(latency).__name__} has no usable minimum "
                    "latency bound"
                )
            if window > latency.min_latency():
                raise NetworkError(
                    f"barrier window {window} exceeds the minimum "
                    f"latency {latency.min_latency()}; cross-shard "
                    "messages would land inside their own window"
                )
            plan = ShardPlan.blocked(peer_ids, shards, pins=shard_pins)
            self.simulator: Simulator = WindowedStackSimulator(
                seed=seed, plan=plan, window=window
            )
            if owned_shards is not None:
                # Build-per-worker: narrow ownership *before* any
                # entity exists, so this worker only constructs (and
                # schedules for) the shards it owns; every other
                # roster entry becomes a ghost below.
                self.simulator.restrict_to(frozenset(owned_shards))
        elif shards > 1:
            # Contiguous id blocks as the "region" partition (matches
            # construction order); churn joiners hash-fall-back. The
            # sharded kernel merges on the global (time, seq) order, so
            # results are bit-identical to the unsharded kernel at any
            # shard count — shard_stats() reports the partition quality.
            plan = ShardPlan.blocked(peer_ids, shards)
            self.simulator = ShardedSimulator(
                seed=seed, shards=shards, plan=plan
            )
        else:
            self.simulator = Simulator(seed=seed)
        self.metrics: MetricsRegistry
        self.network = Network(
            simulator=self.simulator,
            latency=latency,
        )
        self.metrics = self.network.metrics
        self.chain = Blockchain(block_interval=block_interval)
        if self.config.contract_design == "registry":
            contract = MembershipRegistry(
                CONTRACT_ADDRESS,
                stake_wei=self.config.stake_wei,
                burn_fraction=self.config.burn_fraction,
            )
        elif self.config.contract_design == "onchain_tree":
            contract = OnChainTreeContract(
                CONTRACT_ADDRESS,
                depth=self.config.merkle_depth,
                stake_wei=self.config.stake_wei,
                burn_fraction=self.config.burn_fraction,
            )
        else:
            raise RegistrationError(
                f"unknown contract design {self.config.contract_design!r}"
            )
        self.contract = self.chain.deploy(contract)
        if pre_registered:
            # Genesis member list: identities registered at deploy time
            # (the "huge membership, small active set" regime the paper
            # targets). Baked into the contract state and announced to
            # peers with one batch seed event, which replicas apply via
            # the tree's bulk-build path instead of a per-identity
            # event replay.
            if self.config.contract_design != "registry":
                raise RegistrationError(
                    "pre-registered members require the registry design"
                )
            if pre_registered + peer_count > self.config.group_capacity:
                raise RegistrationError(
                    f"{pre_registered} genesis + {peer_count} peer "
                    f"registrations exceed the depth-"
                    f"{self.config.merkle_depth} group capacity "
                    f"({self.config.group_capacity})"
                )
            pks = genesis_commitments(pre_registered, seed)
            contract.genesis_register(pks)
            self.chain.seed_event(
                CONTRACT_ADDRESS, "MembersRegistered", pks=pks
            )

        proving_key, verifying_key = rln_keys(seed=seed.to_bytes(8, "big"))
        self.proving_key = proving_key
        self.verifying_key = verifying_key
        #: Deployment-wide proof-verification memo (None = naive mode).
        #: Parallel mode shares a :class:`BarrierMemoCache` instead of
        #: the plain LRU: reads see only the last barrier's committed
        #: snapshot and writes merge deterministically at barriers, so
        #: the hit pattern — and every downstream counter — is
        #: invariant in the shard/worker layout.
        self.verification_cache = None
        if self.config.verification_cache_size > 0:
            if parallel:
                self.verification_cache = BarrierMemoCache(
                    self.config.verification_cache_size,
                    key_source=self.simulator.consume_order_key,
                )
            else:
                self.verification_cache = VerificationCache(
                    self.config.verification_cache_size
                )
        #: Deployment-wide shared membership-tree store (None = every
        #: replica keeps its own independent MerkleTree).
        self.membership_store: Optional[MembershipStore] = (
            MembershipStore(
                self.config.merkle_depth,
                self.config.root_window,
                sub_depth=self.config.membership_sub_depth,
            )
            if self.config.shared_membership_store
            else None
        )

        self._degree = degree
        self._next_peer_index = peer_count
        self.departed: List[WakuRlnRelayPeer] = []
        self._peer_added_callbacks: List[
            Callable[[WakuRlnRelayPeer], None]
        ] = []
        #: Every peer id of the deployment, build order — identical on
        #: every worker even when only a subset is materialized.
        self.roster: List[NodeId] = list(peer_ids)
        #: Commitments of roster entries owned by other workers: their
        #: registrations must still hit this worker's chain replica.
        self._ghost_commitments: Dict[NodeId, IdentityCommitment] = {}
        self._peer_by_id: Dict[NodeId, WakuRlnRelayPeer] = {}
        self.peers: List[WakuRlnRelayPeer] = []
        if parallel:
            plan = self.simulator.plan
            owned = self.simulator.owned
            for node_id in self.roster:
                if plan.shard_of(node_id) in owned:
                    # Scheduling done while constructing an entity (and
                    # none happens today, but e.g. a future handshake
                    # would) must key on the entity, not on how many
                    # peers this worker happened to build before it.
                    with self.simulator.build_context(node_id):
                        self._materialize_peer(node_id)
                else:
                    self.declare_ghost(node_id)
        else:
            for node_id in self.roster:
                self._materialize_peer(node_id)
        ids = self.roster
        if degree is None or peer_count <= degree + 1:
            connect_full_mesh(self.network, ids)
        else:
            if (peer_count * degree) % 2:
                degree += 1
            connect_random_regular(self.network, ids, degree, seed=seed)
        self._miner_cancel: Optional[Callable[[], None]] = None

    def _materialize_peer(self, node_id: NodeId) -> WakuRlnRelayPeer:
        peer = self._build_peer(node_id)
        self.peers.append(peer)
        self._peer_by_id[node_id] = peer
        return peer

    def peer_named(self, node_id: NodeId) -> Optional[WakuRlnRelayPeer]:
        """The live peer object for ``node_id``, or None when this
        worker holds only its ghost (build-per-worker)."""
        return self._peer_by_id.get(node_id)

    def declare_ghost(self, node_id: NodeId) -> None:
        """Declare a roster entry that lives on another worker.

        The ghost's first identity draw, Ethereum account and overlay
        endpoint are reproduced exactly as its owner creates them —
        per-entity RNG streams make the commitment bit-identical — so
        this worker's chain replica and topology agree with every
        other worker's without holding the peer's protocol stack.
        """
        keypair = MembershipKeyPair.generate(
            self.simulator.entity_rng(node_id)
        )
        self._ghost_commitments[node_id] = keypair.commitment
        self.chain.create_account(
            f"eoa:{node_id}", self.config.stake_wei * 2
        )
        self.network.attach_remote(node_id)

    def _build_peer(self, node_id: NodeId) -> WakuRlnRelayPeer:
        # Parallel peers draw identity material from their own entity
        # stream: a worker that never builds this peer can still
        # reproduce its commitment (declare_ghost) bit-for-bit.
        rng = (
            self.simulator.entity_rng(node_id)
            if self.parallel
            else self.simulator.rng
        )
        return WakuRlnRelayPeer(
            node_id=node_id,
            network=self.network,
            chain=self.chain,
            contract_address=CONTRACT_ADDRESS,
            config=self.config,
            proving_key=self.proving_key,
            verifying_key=self.verifying_key,
            rng=rng,
            verification_cache=self.verification_cache,
            membership_store=self.membership_store,
        )

    # -- churn ------------------------------------------------------------------

    def on_peer_added(
        self, callback: Callable[[WakuRlnRelayPeer], None]
    ) -> None:
        """Observe peers joining mid-run (e.g. to attach recorders)."""
        self._peer_added_callbacks.append(callback)

    def add_peer(
        self,
        register: bool = True,
        start: bool = True,
        bootstrap: str = "replica",
        node_id: Optional[NodeId] = None,
        neighbors: Optional[List[NodeId]] = None,
    ) -> WakuRlnRelayPeer:
        """Join a fresh peer mid-simulation (churn model).

        The newcomer dials ``degree`` random live peers, optionally
        submits its registration transaction (mined with the next
        block), and starts relaying. With ``bootstrap="replica"`` (the
        default) it adopts the most-synced incumbent's membership
        replica — the same clone fast path ``register_all`` uses, now
        safe mid-run — and only replays events newer than that;
        ``bootstrap="replay"`` keeps the original behaviour of syncing
        the full contract event log from genesis.

        ``node_id``/``neighbors`` let a precomputed churn plan pin the
        identity and dial list; parallel mode requires both (the plan
        computes them from shared per-entity streams so every worker
        agrees) and forces ``bootstrap="replay"`` — "most-synced
        incumbent" is a partition-dependent choice, the full event log
        is not.
        """
        if bootstrap not in ("replica", "replay"):
            raise NetworkError(
                f"unknown bootstrap mode {bootstrap!r}; "
                "use 'replica' or 'replay'"
            )
        if self.parallel:
            if node_id is None or neighbors is None:
                raise NetworkError(
                    "parallel churn joins need a planned node_id and "
                    "dial list (see the scenario runner's churn plan)"
                )
            bootstrap = "replay"
        if node_id is None:
            node_id = f"peer-{self._next_peer_index}"
            self._next_peer_index += 1
        peer = self._build_peer(node_id)
        if neighbors is None:
            rng = self.simulator.rng
            alive = [p.node_id for p in self.peers]
            fanout = (
                self._degree if self._degree is not None else len(alive)
            )
            neighbors = rng.sample(alive, min(fanout, len(alive)))
        for neighbor in neighbors:
            self.network.connect(peer.node_id, neighbor)
        if bootstrap == "replica" and self.peers:
            reference = max(
                self.peers, key=lambda p: p._synced_log_index
            )
            peer.adopt_sync_state(reference)
        self.peers.append(peer)
        self._peer_by_id[peer.node_id] = peer
        if register:
            peer.register()
        if start:
            peer.start()
        for callback in self._peer_added_callbacks:
            callback(peer)
        return peer

    def remove_peer(self, node_id: NodeId) -> WakuRlnRelayPeer:
        """Churn a peer out: stop its tasks and drop it (and its links)
        from the network. Its stake stays locked in the contract."""
        index = next(
            (i for i, p in enumerate(self.peers) if p.node_id == node_id),
            None,
        )
        if index is None:
            raise NetworkError(f"no live peer named {node_id!r} to remove")
        peer = self.peers.pop(index)
        self._peer_by_id.pop(node_id, None)
        peer.stop()
        self.network.detach(node_id)
        self.departed.append(peer)
        return peer

    # -- deployment steps -------------------------------------------------------

    def register_all(self) -> None:
        """Register every roster entry and settle the transactions.

        One reference peer replays the event log; the rest adopt its
        replica (group sync is deterministic, so the outcome is
        identical), turning bootstrap from O(peers^2) tree insertions
        into one sync plus O(peers) state copies.

        Ghost entries (roster peers owned by another worker) submit
        the very transaction their owner submits — same sender, same
        commitment, same position in the roster order — so every
        worker's chain converges on an identical pre-drive state.
        """
        now = self.simulator.now
        for node_id in self.roster:
            peer = self._peer_by_id.get(node_id)
            if peer is not None:
                peer.register()
                continue
            commitment = self._ghost_commitments[node_id]
            self.chain.transact(
                f"eoa:{node_id}",
                CONTRACT_ADDRESS,
                "register",
                int(commitment.element),
                value=self.config.stake_wei,
                calldata_bytes=4 + 32,
                submitted_at=now,
            )
        roster = set(self.roster)
        for peer in self.peers:
            # Peers added after construction (pre-drive add_peer) sit
            # behind the roster in self.peers — same order as before.
            if peer.node_id not in roster:
                peer.register()
        self.chain.mine_block(timestamp=self.simulator.now)
        if not self.peers:
            return
        reference = self.peers[0]
        reference.sync()
        # One pass over the *event log* gives every peer its slot,
        # keeping bootstrap linear in the number of registrations —
        # and, unlike a full-tree scan, independent of the genesis
        # member list's size. First event wins, matching
        # MerkleTree.find_leaf at this point (no slashes have been
        # mined yet).
        index_of: Dict = {}
        for event in self.chain.event_log:
            if event.name == "MemberRegistered":
                index_of.setdefault(
                    event.args["pk"], event.args["index"]
                )
        for peer in self.peers[1:]:
            peer.adopt_sync_state(
                reference,
                index_of.get(peer.commitment.element._value),
            )

    def start(self, mine_blocks: bool = True) -> None:
        """Start relays, periodic peer tasks and (optionally) the miner."""
        for peer in self.peers:
            # Per-entity build context: the periodic tasks a peer's
            # start() schedules must draw (origin, seq) keys from the
            # peer's own counter, or a worker that built fewer peers
            # would hand out different keys (no-op off the windowed
            # kernel).
            with self.simulator.build_context(peer.node_id):
                peer.start()
        if mine_blocks and self._miner_cancel is None:
            self._miner_cancel = self.simulator.schedule_periodic(
                self.chain.block_interval,
                lambda sim: self.chain.mine_block(timestamp=sim.now),
                label="miner",
            )

    def stop(self) -> None:
        for peer in self.peers:
            peer.stop()
        if self._miner_cancel is not None:
            self._miner_cancel()
            self._miner_cancel = None

    def run(self, duration: float) -> None:
        self.simulator.run_for(duration)

    # -- conveniences ----------------------------------------------------------------

    def peer(self, index: int) -> WakuRlnRelayPeer:
        return self.peers[index]

    def collect_deliveries(self) -> Dict[str, List[bytes]]:
        """Attach recorders to every peer; returns the live dict."""
        deliveries: Dict[str, List[bytes]] = {p.node_id: [] for p in self.peers}
        for peer in self.peers:
            peer.on_payload(
                lambda payload, _mid, pid=peer.node_id: deliveries[pid].append(
                    payload
                )
            )
        return deliveries

    @property
    def registered_count(self) -> int:
        return sum(1 for p in self.peers if p.is_registered)
