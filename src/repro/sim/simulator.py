"""Discrete-event simulation kernel.

Everything time-dependent in the reproduction — message propagation,
GossipSub heartbeats, epoch progression, block mining, modeled zkSNARK
latencies — runs on this kernel: a priority queue of timestamped events
consumed in order while a virtual clock advances. Simulations are fully
deterministic given a seed, and simulated seconds are free, so a 13 s
block interval or a 0.5 s proving delay costs nothing in wall-clock.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError

#: An event handler; receives the simulator so it can schedule follow-ups.
Handler = Callable[["Simulator"], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    handler: Handler = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Simulator:
    """A deterministic discrete-event simulator."""

    def __init__(self, seed: int = 0) -> None:
        self.now = 0.0
        self.rng = random.Random(seed)
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self.events_processed = 0

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self, delay: float, handler: Handler, label: str = ""
    ) -> EventHandle:
        """Run ``handler`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = _ScheduledEvent(
            time=self.now + delay,
            sequence=next(self._sequence),
            handler=handler,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(
        self, time: float, handler: Handler, label: str = ""
    ) -> EventHandle:
        """Run ``handler`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, handler, label)

    def schedule_periodic(
        self,
        interval: float,
        handler: Handler,
        label: str = "",
        jitter: float = 0.0,
    ) -> Callable[[], None]:
        """Run ``handler`` every ``interval`` seconds until cancelled.

        Returns a zero-argument cancel function. ``jitter`` adds a
        uniform random offset in ``[0, jitter)`` to each firing, which
        keeps heartbeats of many nodes from synchronising artificially.
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        stopped = False

        def tick(sim: "Simulator") -> None:
            if stopped:
                return
            handler(sim)
            if not stopped:
                delay = interval + (sim.rng.uniform(0, jitter) if jitter else 0)
                sim.schedule(delay, tick, label)

        first_delay = self.rng.uniform(0, interval) if jitter else interval
        self.schedule(first_delay, tick, label)

        def cancel() -> None:
            nonlocal stopped
            stopped = True

        return cancel

    # -- execution ----------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = event.time
            event.handler(self)
            self.events_processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000_000,
    ) -> None:
        """Drain the queue, optionally stopping at simulated time ``until``.

        ``max_events`` is a runaway guard (e.g. a zero-delay event loop
        rescheduling itself forever); hitting it with work still
        pending before ``until`` raises instead of silently truncating
        the simulation — a cut-short run would otherwise report
        plausible but wrong metrics.
        """
        processed = 0
        while self._queue and processed < max_events:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            processed += 1
        if processed >= max_events:
            # Drop cancelled entries so the truncation check sees the
            # first *live* pending event (a cancelled timer at the head
            # must not mask real unprocessed work).
            while self._queue and self._queue[0].cancelled:
                heapq.heappop(self._queue)
            if self._queue and (
                until is None or self._queue[0].time <= until
            ):
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) with "
                    f"work pending at t={self._queue[0].time:.3f}; raise "
                    "max_events or shrink the workload"
                )
        if until is not None and (not self._queue or self.now < until):
            self.now = max(self.now, until)

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` simulated seconds."""
        self.run(until=self.now + duration)
