"""Discrete-event simulation kernel.

Everything time-dependent in the reproduction — message propagation,
GossipSub heartbeats, epoch progression, block mining, modeled zkSNARK
latencies — runs on this kernel: a priority queue of timestamped events
consumed in order while a virtual clock advances. Simulations are fully
deterministic given a seed, and simulated seconds are free, so a 13 s
block interval or a 0.5 s proving delay costs nothing in wall-clock.

The queue stores ``(time, sequence, event)`` tuples so heap comparisons
stay in C, event records are slotted and recycled through a free list
(the per-message hot path allocates nothing once warm), and cancelled
events are compacted out of the heap once they outnumber live ones —
workloads that cancel/reschedule timers constantly (gossip backoffs,
churn) keep a bounded queue instead of a monotonically growing one.
"""

from __future__ import annotations

import gc
import itertools
import random
from contextlib import contextmanager
from heapq import heapify, heappop, heappush
from typing import Callable, Optional

from ..errors import SimulationError

#: An event handler; receives the simulator so it can schedule follow-ups.
Handler = Callable[["Simulator"], None]


# -- GC quiescence --------------------------------------------------------
#
# A large simulation holds millions of live, long-lived objects (peers,
# meshes, caches) while the event loop allocates constantly (packets,
# closures); the collector's full generations then rescan the whole
# graph every few hundred thousand allocations for nothing — the
# workload is essentially cycle-free. Freezing the pre-run object graph
# and widening the thresholds while the loop runs removes that rescan
# without changing what is ever collected. ``freeze``/``unfreeze`` move
# generation lists around (no scan), so entering is cheap enough for
# per-window calls from sharded workers.

_GC_DEPTH = 0
_GC_SAVED: Optional[tuple] = None


class quiescent_gc:
    """Context manager: calm the collector around a large build+run.

    Re-entrant; the innermost exit restores the caller's thresholds.
    Scenario runners wrap their whole build+run in this so the setup
    phase (millions of allocations into a growing live graph) gets the
    same treatment as the event loop, which quiesces itself.
    """

    def __enter__(self) -> "quiescent_gc":
        _gc_quiesce()
        return self

    def __exit__(self, *exc_info: object) -> None:
        _gc_restore()


def _gc_quiesce() -> None:
    global _GC_DEPTH, _GC_SAVED
    _GC_DEPTH += 1
    if _GC_DEPTH > 1 or not gc.isenabled():
        return
    _GC_SAVED = gc.get_threshold()
    gc.freeze()
    gc.set_threshold(100_000, 50, 100)


def _gc_restore() -> None:
    global _GC_DEPTH, _GC_SAVED
    _GC_DEPTH -= 1
    if _GC_DEPTH > 0 or _GC_SAVED is None:
        return
    gc.set_threshold(*_GC_SAVED)
    _GC_SAVED = None
    gc.unfreeze()


class _ScheduledEvent:
    """One queue entry's mutable record (identity + cancellation flag).

    Ordering lives in the ``(time, sequence)`` tuple prefix of the heap
    entries, never on the record itself; records are recycled through
    the simulator's free list, with ``sequence`` doubling as the
    incarnation check that keeps stale :class:`EventHandle` references
    from touching a reused record.
    """

    __slots__ = ("time", "sequence", "handler", "label", "cancelled")

    def __init__(self) -> None:
        self.time = 0.0
        self.sequence = -1
        self.handler: Optional[Handler] = None
        self.label = ""
        self.cancelled = False


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_sim", "_event", "_sequence", "_time", "_cancelled")

    def __init__(self, sim: "Simulator", event: _ScheduledEvent) -> None:
        self._sim = sim
        self._event = event
        self._sequence = event.sequence
        self._time = event.time
        self._cancelled = False

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        event = self._event
        # Only mark the record if it is still *our* incarnation (it may
        # have fired and been recycled for an unrelated event since).
        if event.sequence == self._sequence and not event.cancelled:
            event.cancelled = True
            self._sim._note_cancelled()

    @property
    def time(self) -> float:
        return self._time

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Simulator:
    """A deterministic discrete-event simulator."""

    #: Lazy-compaction trigger: rebuild the heap once at least this many
    #: cancelled events sit in it *and* they are at least half of it.
    COMPACT_MIN_CANCELLED = 64

    #: Free-list bound; beyond this, popped event records are dropped.
    _POOL_LIMIT = 4096

    def __init__(self, seed: int = 0) -> None:
        self.now = 0.0
        self.rng = random.Random(seed)
        #: Heap of ``(time, sequence, _ScheduledEvent)``.
        self._queue: list = []
        self._sequence = itertools.count()
        self._pool: list = []
        self._cancelled_pending = 0
        self.events_processed = 0

    # -- rng streams -----------------------------------------------------------

    def stream(self, key: object) -> random.Random:
        """The random stream owned by entity ``key``.

        The base kernel runs everything off one shared stream, so this
        returns :attr:`rng` regardless of key — callers that sample
        through ``stream(...)`` are bit-identical to callers that use
        ``rng`` directly. The sharded kernel overrides this with
        per-entity streams derived from the root seed, which is what
        makes an entity's draws independent of which shard it runs on.
        """
        return self.rng

    def entity_rng(self, key: object) -> random.Random:
        """The stream an *entity's hot path* should draw from.

        Distinct from :meth:`stream`: protocol code (routers, peers,
        the network's loss/latency draws) calls this on every send and
        every maintenance tick, and the contract is that the default
        kernels keep it on the shared stream — bit-identical to the
        historical behaviour — while the window-isolated parallel
        kernel returns a private per-entity stream so an entity's
        draws do not depend on which shard or worker executes it.
        """
        return self.rng

    @property
    def entity_isolated(self) -> bool:
        """True when this kernel gives each entity a private RNG
        stream and enforces window isolation (the parallel full-stack
        kernel); protocol code uses it to pick port-based delivery
        over closure scheduling."""
        return False

    @property
    def executing(self) -> bool:
        """True while the kernel is inside its event loop — i.e. the
        caller is an event handler rather than build-phase wiring. The
        base kernel never needs the distinction."""
        return False

    @contextmanager
    def build_context(self, key: object):
        """Attribute build-phase work to entity ``key``.

        A no-op here: only the window-isolated parallel kernel keys
        build-time scheduling to per-entity origins (so a worker that
        builds a subset of the entities reproduces their exact event
        keys). Builders wrap each entity's construction in this
        unconditionally and the default kernels ignore it.
        """
        yield

    # -- scheduling ------------------------------------------------------------

    def _checkout(
        self, time: float, handler: Handler, label: str
    ) -> _ScheduledEvent:
        pool = self._pool
        event = pool.pop() if pool else _ScheduledEvent()
        event.time = time
        event.sequence = next(self._sequence)
        event.handler = handler
        event.label = label
        event.cancelled = False
        return event

    def _recycle(self, event: _ScheduledEvent) -> None:
        event.handler = None  # don't pin closures in the free list
        event.sequence = -1
        pool = self._pool
        if len(pool) < self._POOL_LIMIT:
            pool.append(event)

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        queue = self._queue
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 >= len(queue)
        ):
            live = [entry for entry in queue if not entry[2].cancelled]
            for entry in queue:
                if entry[2].cancelled:
                    self._recycle(entry[2])
            # In place, so aliases held by a running step()/run() frame
            # keep seeing the compacted heap.
            queue[:] = live
            heapify(queue)
            self._cancelled_pending = 0

    def schedule(
        self,
        delay: float,
        handler: Handler,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        """Run ``handler`` after ``delay`` simulated seconds.

        ``shard`` is an optional affinity hint (typically the node id
        the event concerns); the base kernel ignores it, the sharded
        kernel uses it to route the event onto the owning shard's queue.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        # _checkout inlined: one call frame per scheduled event matters
        # at tens of millions of events.
        pool = self._pool
        event = pool.pop() if pool else _ScheduledEvent()
        event.time = time = self.now + delay
        event.sequence = sequence = next(self._sequence)
        event.handler = handler
        event.label = label
        event.cancelled = False
        heappush(self._queue, (time, sequence, event))
        return EventHandle(self, event)

    def schedule_at(
        self,
        time: float,
        handler: Handler,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        """Run ``handler`` at absolute simulated time ``time``."""
        return self.schedule(time - self.now, handler, label, shard=shard)

    def schedule_periodic(
        self,
        interval: float,
        handler: Handler,
        label: str = "",
        jitter: float = 0.0,
        stagger: bool = False,
        rng: Optional[random.Random] = None,
        shard: Optional[str] = None,
    ) -> Callable[[], None]:
        """Run ``handler`` every ``interval`` seconds until cancelled.

        Returns a zero-argument cancel function. ``jitter`` adds a
        uniform random offset in ``[0, jitter)`` to **every** firing,
        the first included, so all gaps lie in
        ``[interval, interval + jitter)``. ``stagger=True`` additionally
        draws the first firing's phase from ``[0, interval)`` — the
        explicit opt-in that keeps heartbeats of many nodes from
        synchronising artificially. ``rng`` selects the stream the
        offsets are drawn from (default: the simulator's shared one).
        """
        if interval <= 0:
            raise SimulationError("periodic interval must be positive")
        draw = rng if rng is not None else self.rng
        stopped = False

        def tick(sim: "Simulator") -> None:
            if stopped:
                return
            handler(sim)
            if not stopped:
                delay = interval + (draw.uniform(0, jitter) if jitter else 0)
                sim.schedule(delay, tick, label, shard=shard)

        if stagger:
            first_delay = draw.uniform(0, interval)
        else:
            first_delay = interval + (draw.uniform(0, jitter) if jitter else 0)
        self.schedule(first_delay, tick, label, shard=shard)

        def cancel() -> None:
            nonlocal stopped
            stopped = True

        return cancel

    # -- execution ----------------------------------------------------------------

    def queue_depth(self) -> int:
        """Live (non-cancelled) events currently queued."""
        return len(self._queue) - self._cancelled_pending

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, event = heappop(queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                self._recycle(event)
                continue
            if time < self.now:
                raise SimulationError("event queue went backwards in time")
            self.now = time
            handler = event.handler
            self._recycle(event)
            handler(self)
            self.events_processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000_000,
    ) -> None:
        """Drain the queue, optionally stopping at simulated time ``until``.

        ``max_events`` is a runaway guard (e.g. a zero-delay event loop
        rescheduling itself forever); hitting it with work still
        pending before ``until`` raises instead of silently truncating
        the simulation — a cut-short run would otherwise report
        plausible but wrong metrics.
        """
        queue = self._queue
        processed = 0
        _gc_quiesce()
        try:
            # step() inlined: the peek-then-step split would touch the
            # heap head twice per event.
            while queue and processed < max_events:
                time, _seq, event = queue[0]
                if event.cancelled:
                    heappop(queue)
                    self._cancelled_pending -= 1
                    self._recycle(event)
                    continue
                if until is not None and time > until:
                    break
                heappop(queue)
                if time < self.now:
                    raise SimulationError(
                        "event queue went backwards in time"
                    )
                self.now = time
                handler = event.handler
                self._recycle(event)
                handler(self)
                self.events_processed += 1
                processed += 1
        finally:
            _gc_restore()
        if processed >= max_events:
            # Drop cancelled entries so the truncation check sees the
            # first *live* pending event (a cancelled timer at the head
            # must not mask real unprocessed work).
            while queue and queue[0][2].cancelled:
                entry = heappop(queue)
                self._cancelled_pending -= 1
                self._recycle(entry[2])
            if queue and (until is None or queue[0][0] <= until):
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) with "
                    f"work pending at t={queue[0][0]:.3f}; raise "
                    "max_events or shrink the workload"
                )
        if until is not None and (not queue or self.now < until):
            self.now = max(self.now, until)

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` simulated seconds."""
        self.run(until=self.now + duration)
