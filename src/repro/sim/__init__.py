"""Deterministic discrete-event simulation kernel and latency models."""

from .latency import LatencyModel, LogNormalLatency, UniformLatency
from .metrics import Histogram, MetricsRegistry
from .shards import (
    CrossShardPacket,
    ParallelShardRunner,
    ShardedSimulator,
    ShardPlan,
    UniformRelayWorkload,
)
from .simulator import EventHandle, Simulator, quiescent_gc

__all__ = [
    "Simulator",
    "EventHandle",
    "ShardedSimulator",
    "ShardPlan",
    "ParallelShardRunner",
    "CrossShardPacket",
    "UniformRelayWorkload",
    "LatencyModel",
    "UniformLatency",
    "LogNormalLatency",
    "Histogram",
    "MetricsRegistry",
    "quiescent_gc",
]
