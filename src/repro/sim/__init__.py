"""Deterministic discrete-event simulation kernel and latency models."""

from .latency import LatencyModel, LogNormalLatency, UniformLatency
from .metrics import Histogram, MetricsRegistry
from .simulator import EventHandle, Simulator

__all__ = [
    "Simulator",
    "EventHandle",
    "LatencyModel",
    "UniformLatency",
    "LogNormalLatency",
    "Histogram",
    "MetricsRegistry",
]
