"""Link-latency models for the simulated network.

The epoch-validation rule of the paper depends directly on the maximum
network delay ``D`` (Thr = D / T), so latency is a first-class model
object rather than a hard-coded constant. All models are deterministic
given the simulator's RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import SimulationError


@dataclass(frozen=True)
class LatencyModel:
    """Base class: constant latency, optional loss."""

    base_seconds: float = 0.05
    loss_probability: float = 0.0

    def sample_latency(self, rng: random.Random) -> float:
        return self.base_seconds

    def min_latency(self) -> float:
        """A proven lower bound on every latency sample.

        The parallel full-stack kernel sizes its barrier window to
        this bound: any message sent inside window ``[t0, t1)`` with
        ``t1 - t0 <= min_latency()`` arrives at or after ``t1``, so
        cross-shard traffic never lands inside the window it was sent
        in. Models whose samples can get arbitrarily close to zero
        must return 0.0 (which rejects them for parallel runs).
        """
        return self.base_seconds

    def sample_loss(self, rng: random.Random) -> bool:
        if self.loss_probability <= 0:
            return False
        return rng.random() < self.loss_probability


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform latency in ``[base, base + spread]``."""

    spread_seconds: float = 0.05

    def sample_latency(self, rng: random.Random) -> float:
        return self.base_seconds + rng.uniform(0, self.spread_seconds)


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency, the usual fit for internet RTT distributions.

    ``base_seconds`` is the median; ``sigma`` the log-space standard
    deviation. Samples are clamped to ``max_seconds`` so the paper's
    "maximum network delay D" stays meaningful.
    """

    sigma: float = 0.4
    max_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.base_seconds <= 0:
            raise SimulationError("median latency must be positive")

    def sample_latency(self, rng: random.Random) -> float:
        import math

        sample = self.base_seconds * math.exp(rng.gauss(0.0, self.sigma))
        return min(sample, self.max_seconds)

    def min_latency(self) -> float:
        # exp(gauss) has unbounded support below, so no useful bound
        # exists; parallel runs reject this model.
        return 0.0
