"""Window-isolated simulation kernel for full-stack parallel sharding.

The lockstep-merge :class:`~repro.sim.shards.ShardedSimulator` keeps a
single global event order, so it can never execute two shards
concurrently. This module provides the kernel that can:
:class:`WindowedStackSimulator` executes each barrier window's events
*per shard independently*, which is only sound because of three
invariants it enforces:

1. **Partition-invariant event order.** Every event is keyed
   ``(time, origin, seq)`` where ``origin`` is the *entity* (node id)
   whose handler scheduled it — inherited from the executing event's
   context — and ``seq`` a per-origin counter. An entity's events
   execute only in events destined to it, which run on exactly one
   shard in key order; by induction its counter values are identical
   at any shard/worker count, so the key is a total order every
   partition agrees on. (The sharded kernel's global sequence counter,
   by contrast, depends on the interleaving and is only usable because
   that kernel replays the exact global merge.)

2. **Window isolation.** Execution advances in barrier windows
   ``[t0, t1)`` with ``t1 - t0 <=`` the minimum network latency: any
   cross-shard event scheduled inside a window lands at or past the
   window's end (checked, not assumed — a violation raises). Within a
   window, shards therefore cannot affect each other, and events for
   shards owned by other workers are exported as deterministic
   ``(time, origin, seq)``-keyed packets exchanged at the barrier.

3. **Per-entity RNG streams.** :meth:`entity_rng` gives each entity a
   private stream seeded from the root seed, so an entity's draws
   depend only on its own history, not on which shard interleaves
   with it.

Cross-worker events cannot carry closures (they cross a pipe), so
network delivery registers a *port* — a named, picklable-payload
handler — and schedules through :meth:`schedule_port`. For an owned
destination that degenerates to a plain local schedule with the same
key, which is what makes a one-worker run bit-identical to an
N-worker run.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..errors import SimulationError
from .shards import ShardPlan, _stable_hash
from .simulator import Handler, Simulator, _gc_quiesce, _gc_restore

#: Origin key of everything scheduled outside any entity's handler:
#: build-phase wiring, global drivers (adversary engine, scenario
#: faults), and their descendants. Executes on shard 0's owner.
BUILD_ORIGIN = "build"

#: One cross-worker event: ``(dst_shard, dst_key, time, origin, seq,
#: port, payload, label)``. ``dst_key`` is the destination entity id —
#: the context the handler must execute under, so descendants
#: scheduled by the receiving entity inherit *its* origin on every
#: worker alike. Plain tuple so it pickles across worker pipes.
PortPacket = Tuple[int, Optional[str], float, str, int, str, object, str]


class _WRecord:
    """One scheduled event of the windowed kernel."""

    __slots__ = ("handler", "label", "shard", "ckey", "cancelled")

    def __init__(
        self,
        handler: Optional[Handler],
        label: str,
        shard: int,
        ckey: str,
    ) -> None:
        self.handler = handler
        self.label = label
        self.shard = shard
        #: Context key: the entity this event is *about* (its shard
        #: affinity key), falling back to its origin — what
        #: descendants scheduled from its handler inherit as origin.
        self.ckey = ckey
        self.cancelled = False


class _WHandle:
    """Cancellation handle (EventHandle-compatible surface)."""

    __slots__ = ("_record", "_time")

    def __init__(self, record: _WRecord, time: float) -> None:
        self._record = record
        self._time = time

    def cancel(self) -> None:
        self._record.cancelled = True

    @property
    def time(self) -> float:
        return self._time

    @property
    def cancelled(self) -> bool:
        return self._record.cancelled


class WindowedStackSimulator(Simulator):
    """Deterministic window-isolated kernel (see module docstring).

    The heap holds ``(time, origin, seq, record)`` — the
    partition-invariant order. ``owned`` starts as all shards; a
    forked worker narrows it with :meth:`restrict_to`, after which
    events for foreign shards can only be produced through
    :meth:`schedule_port` and are exported for the barrier exchange.
    """

    def __init__(
        self,
        seed: int = 0,
        plan: Optional[ShardPlan] = None,
        window: float = 0.25,
    ) -> None:
        super().__init__(seed=seed)
        if window <= 0:
            raise SimulationError("barrier window must be positive")
        self.plan = plan if plan is not None else ShardPlan.hashed(1)
        self.window = window
        self.owned: FrozenSet[int] = frozenset(
            range(self.plan.shard_count)
        )
        self._heap: List[Tuple[float, str, int, _WRecord]] = []
        self._context = BUILD_ORIGIN
        self._exec_shard = 0
        self._origin_seq: Dict[str, int] = {}
        self._ports: Dict[str, Callable[[object], None]] = {}
        self._exports: List[PortPacket] = []
        self._running = False
        self._window_end = 0.0
        self._salt = _stable_hash(f"entity-rng:{seed}").to_bytes(8, "big")
        self._streams: Dict[str, random.Random] = {}
        self.barriers = 0
        self.events_by_shard = [0] * self.plan.shard_count
        self.cross_shard_scheduled = 0
        #: Optional list; when set, run_window appends
        #: ``(time, origin, seq, label, shard)`` per executed event —
        #: the equivalence debugging aid (diff two modes' streams).
        self.trace: Optional[List[Tuple]] = None

    # -- rng ------------------------------------------------------------------

    def entity_rng(self, key: object) -> random.Random:
        skey = str(key)
        stream = self._streams.get(skey)
        if stream is None:
            stream = random.Random(_stable_hash(skey, self._salt))
            self._streams[skey] = stream
        return stream

    def ephemeral_rng(self, key: object) -> random.Random:
        """Seeded exactly like :meth:`entity_rng` but not retained.

        For one-shot roster-wide draws (one coin per peer in the
        roster): every worker walks the whole roster, and caching a
        Mersenne state (~2.5 KiB) per entity would put an O(all peers)
        term back into per-worker RSS that build-per-worker exists to
        remove. Draw values are bit-identical to ``entity_rng`` — same
        seed derivation — provided all draws from the key finish
        before anyone requests it through ``entity_rng`` (a cached
        stream, if one exists, is returned so mixed use stays sound in
        that direction)."""
        skey = str(key)
        stream = self._streams.get(skey)
        if stream is not None:
            return stream
        return random.Random(_stable_hash(skey, self._salt))

    def stream(self, key: object) -> random.Random:
        return self.entity_rng(key)

    @property
    def entity_isolated(self) -> bool:
        return True

    @property
    def executing(self) -> bool:
        return self._running

    # -- ordering keys -----------------------------------------------------------

    def _next_seq(self, origin: str) -> int:
        seq = self._origin_seq.get(origin, 0)
        self._origin_seq[origin] = seq + 1
        return seq

    def consume_order_key(self) -> Tuple[float, str, int]:
        """A fresh ``(time, origin, seq)`` key in the executing
        context — the chain replica's op keys, drawn from the same
        per-origin counter as event scheduling so op order and event
        order never collide and both are partition-invariant."""
        origin = self._context
        return (self.now, origin, self._next_seq(origin))

    @contextmanager
    def build_context(self, key: object):
        """Attribute build-phase scheduling to one entity's origin.

        Build-per-worker only works if build-time keys are
        partition-invariant: a worker that builds 3 of 8 shards must
        hand each entity the exact ``(origin, seq)`` keys it would get
        in a full build. Wrapping an entity's construction in its own
        context pins its build-time schedules and
        :meth:`consume_order_key` draws to a per-entity counter, so
        skipping the *other* entities' builds cannot shift them. Only
        meaningful outside execution (during a window the executing
        event's context governs); nesting restores the outer key.
        """
        previous = self._context
        self._context = str(key)
        try:
            yield
        finally:
            self._context = previous

    # -- ports ---------------------------------------------------------------------

    def register_port(
        self, name: str, handler: Callable[[object], None]
    ) -> None:
        """Register a named handler cross-worker events dispatch to.

        Ports must be registered identically on every worker (they are
        registered at build time, before the fork)."""
        if name in self._ports:
            raise SimulationError(f"port {name!r} already registered")
        self._ports[name] = handler

    def schedule_port(
        self,
        delay: float,
        port: str,
        payload: object,
        label: str = "",
        shard: Optional[str] = None,
    ) -> None:
        """Schedule ``port(payload)`` — the cross-worker-safe form.

        For an owned destination shard this is exactly a local
        :meth:`schedule` of the port handler under the same key; for a
        foreign shard the event is exported and injected by the owning
        worker at the barrier, again under the same key — so ownership
        never changes the execution order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        handler = self._ports.get(port)
        if handler is None:
            raise SimulationError(f"unknown port {port!r}")
        time = self.now + delay
        origin = self._context
        seq = self._next_seq(origin)
        dst = self.plan.shard_of(shard)
        self._check_causality(dst, time, label)
        if dst in self.owned:
            record = _WRecord(
                lambda _sim, _h=handler, _p=payload: _h(_p),
                label,
                dst,
                shard if shard is not None else origin,
            )
            heappush(self._heap, (time, origin, seq, record))
        else:
            self._exports.append(
                (dst, shard, time, origin, seq, port, payload, label)
            )

    def inject(self, packets: List[PortPacket]) -> None:
        """Accept barrier packets exported by other workers."""
        for dst, dst_key, time, origin, seq, port, payload, label in packets:
            if dst not in self.owned:
                raise SimulationError(
                    f"packet for shard {dst} routed to wrong worker"
                )
            handler = self._ports[port]
            record = _WRecord(
                lambda _sim, _h=handler, _p=payload: _h(_p),
                label,
                dst,
                dst_key if dst_key is not None else origin,
            )
            heappush(self._heap, (time, origin, seq, record))

    def drain_exports(self) -> List[PortPacket]:
        exports, self._exports = self._exports, []
        return exports

    def queue_depth(self) -> int:
        return sum(1 for entry in self._heap if not entry[3].cancelled)

    # -- scheduling ------------------------------------------------------------------

    def _check_causality(
        self, dst_shard: int, time: float, label: str
    ) -> None:
        if not self._running or dst_shard == self._exec_shard:
            return
        self.cross_shard_scheduled += 1
        if time < self._window_end:
            raise SimulationError(
                f"cross-shard event {label!r} at t={time:.6f} lands "
                f"inside the current window (ends {self._window_end:.6f}); "
                "the barrier window must not exceed the minimum "
                "network latency"
            )

    def schedule(
        self,
        delay: float,
        handler: Handler,
        label: str = "",
        shard: Optional[str] = None,
    ):
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        time = self.now + delay
        origin = self._context
        seq = self._next_seq(origin)
        dst = self.plan.shard_of(shard)
        self._check_causality(dst, time, label)
        if dst not in self.owned:
            raise SimulationError(
                f"closure event {label!r} targets foreign shard {dst}; "
                "cross-worker events must go through schedule_port"
            )
        record = _WRecord(
            handler, label, dst, shard if shard is not None else origin
        )
        heappush(self._heap, (time, origin, seq, record))
        return _WHandle(record, time)

    # -- ownership ---------------------------------------------------------------------

    def restrict_to(self, owned: FrozenSet[int]) -> None:
        """Narrow this (forked) worker to a subset of the shards,
        dropping already-queued events owned elsewhere (the owning
        worker has identical copies in its own heap)."""
        if not owned <= self.owned:
            raise SimulationError("can only narrow ownership")
        self.owned = frozenset(owned)
        self._heap = [
            entry for entry in self._heap if entry[3].shard in self.owned
        ]
        self._heap.sort()

    # -- execution ---------------------------------------------------------------------

    def run_window(self, t_end: float, final: bool = False) -> None:
        """Execute every owned event with ``time < t_end`` (``<=``
        for the final window, matching ``Simulator.run(until)``'s
        inclusive bound), then advance the clock to the barrier."""
        if t_end < self.now:
            raise SimulationError("window end precedes current time")
        heap = self._heap
        self._running = True
        self._window_end = t_end
        events_by_shard = self.events_by_shard
        _gc_quiesce()
        try:
            while heap:
                time = heap[0][0]
                if time > t_end or (time == t_end and not final):
                    break
                time, _origin, _seq, record = heappop(heap)
                if record.cancelled:
                    continue
                if self.trace is not None:
                    self.trace.append(
                        (time, _origin, _seq, record.label, record.shard)
                    )
                if time < self.now:
                    raise SimulationError(
                        "event queue went backwards in time"
                    )
                self.now = time
                self._exec_shard = record.shard
                self._context = record.ckey
                handler = record.handler
                record.handler = None
                handler(self)
                self.events_processed += 1
                events_by_shard[record.shard] += 1
        finally:
            _gc_restore()
            self._context = BUILD_ORIGIN
            self._exec_shard = 0
        self.now = max(self.now, t_end)
        self.barriers += 1

    def run(self, until: Optional[float] = None, max_events: int = 0) -> None:
        raise SimulationError(
            "the windowed kernel runs in explicit barrier windows; "
            "drive it with run_window()"
        )

    # -- accounting ---------------------------------------------------------------------

    def shard_stats(self) -> Dict[str, object]:
        """Coupling accounting, same shape as the sharded kernel's.

        ``cross_shard_intra_window`` is 0 *by construction* here — an
        intra-window cross-shard event raises instead of executing —
        which is exactly the coupling drop the parallel mode claims
        over the lockstep-merge kernel.
        """
        total = max(1, self.events_processed)
        return {
            "shards": self.plan.shard_count,
            "window": self.window,
            "barriers": self.barriers,
            "events_by_shard": list(self.events_by_shard),
            "cross_shard_scheduled": self.cross_shard_scheduled,
            "cross_shard_intra_window": 0,
            "cross_shard_fraction": self.cross_shard_scheduled / total,
        }
