"""Sharded simulation core: partitioned event queues with lockstep barriers.

Scaling a run past a few thousand peers is bounded by one global event
queue. This module partitions the network into *shards* — groups of
nodes assigned by a :class:`ShardPlan` — and gives each shard its own
event queue, with two execution modes layered on the partition:

:class:`ShardedSimulator`
    A drop-in :class:`~repro.sim.simulator.Simulator` whose queue is
    split per shard. Events carry a shard-affinity key (the node id
    they concern); execution merges the per-shard heaps on the global
    ``(time, sequence)`` order, so a seeded run produces the **same
    fingerprint at any shard count** — invariance by construction, the
    property the tier-1 suite pins. The shards earn their keep as
    accounting (how much traffic crosses shard boundaries, and how much
    of it lands inside the current barrier window) and as the routing
    substrate the parallel runner builds on.

:class:`ParallelShardRunner`
    True parallelism for *shard-confined* workloads: each shard runs
    its own runtime (typically wrapping a private ``Simulator``) on a
    forked worker process, advancing in lockstep **barrier windows**.
    Cross-shard messages emitted during a window are exchanged at the
    barrier and delivered in the next one; the merge order is the
    deterministic ``(time, origin_shard, origin_seq)`` sort, so results
    are independent of worker scheduling. Correctness requires the
    window to be at most the minimum cross-shard latency (the classic
    conservative-PDES bound); the runner raises on violations rather
    than silently reordering causality.

The full Waku-RLN-Relay stack shares global state (chain, contract,
membership store), so scenarios run on the lockstep-merge
:class:`ShardedSimulator`; the window-isolated parallel path is for
workloads expressed through the :class:`ShardWorkload` protocol, e.g.
the relay-fanout benchmark workload below.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from hashlib import blake2b
from heapq import heapify, heappop, heappush
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import SimulationError
from .simulator import (
    EventHandle,
    Handler,
    Simulator,
    _gc_quiesce,
    _gc_restore,
)


def _stable_hash(key: str, salt: bytes = b"") -> int:
    """Process-independent 64-bit hash (built-in ``hash`` is salted)."""
    return int.from_bytes(
        blake2b(key.encode(), key=salt, digest_size=8).digest(), "big"
    )


class ShardPlan:
    """Maps entity keys (node ids) to shard indices.

    Two strategies:

    - ``hash``: stable blake2 of the key, modulo the shard count.
      Stateless, churn-proof, but ignores topology.
    - ``block``: contiguous blocks over an explicit ordered key list —
      the "region" partition when node ids are laid out by topology
      region or topic cluster. Keys outside the list (churn joiners)
      fall back to the hash assignment, so the plan never rejects a
      node.

    ``None`` keys (events that concern no particular node: the miner,
    scenario drivers) map to shard 0.

    ``pins`` forces specific keys onto specific shards regardless of
    strategy — the full-stack parallel mode pins entities that must be
    co-resident with the shard-0 globals (adversary agents driven by
    the engine, watchtower services) so a worker owning shard 0 owns
    everything those globals touch synchronously.
    """

    def __init__(
        self,
        shard_count: int,
        strategy: str = "hash",
        keys: Optional[Sequence[str]] = None,
        pins: Optional[Dict[str, int]] = None,
    ) -> None:
        if shard_count < 1:
            raise SimulationError("shard_count must be >= 1")
        if strategy not in ("hash", "block"):
            raise SimulationError(
                f"unknown shard strategy {strategy!r}; use 'hash' or 'block'"
            )
        self.shard_count = shard_count
        self.strategy = strategy
        self._assignment: Dict[str, int] = {}
        if strategy == "block":
            if not keys:
                raise SimulationError(
                    "block strategy needs the ordered key list"
                )
            block = -(-len(keys) // shard_count)  # ceil division
            for i, key in enumerate(keys):
                self._assignment[key] = min(i // block, shard_count - 1)
        if pins:
            for key, shard in pins.items():
                if not 0 <= shard < shard_count:
                    raise SimulationError(
                        f"pin {key!r} -> {shard} outside [0, {shard_count})"
                    )
                self._assignment[key] = shard

    @classmethod
    def hashed(cls, shard_count: int) -> "ShardPlan":
        return cls(shard_count, strategy="hash")

    @classmethod
    def blocked(
        cls,
        keys: Sequence[str],
        shard_count: int,
        pins: Optional[Dict[str, int]] = None,
    ) -> "ShardPlan":
        return cls(shard_count, strategy="block", keys=keys, pins=pins)

    def shard_of(self, key: Optional[str]) -> int:
        if key is None:
            return 0
        if self.shard_count == 1:
            return 0
        assigned = self._assignment.get(key)
        if assigned is not None:
            return assigned
        return _stable_hash(key) % self.shard_count


class ShardedSimulator(Simulator):
    """Per-shard event queues merged on the global ``(time, seq)`` order.

    Scheduling routes every event onto its shard's heap (``shard=`` is
    the affinity key resolved through the :class:`ShardPlan`);
    execution repeatedly pops the globally earliest event across all
    shard heads. Because ``sequence`` comes from one shared counter,
    the merged order is *exactly* the order a single-queue
    :class:`Simulator` would produce — fingerprints are invariant in
    the shard count and equal to the unsharded kernel's.

    Barrier windows of ``window`` simulated seconds structure the
    cross-shard accounting exposed by :meth:`shard_stats`:
    ``cross_shard_scheduled`` counts events one shard scheduled onto
    another, and ``cross_shard_intra_window`` the subset that lands
    inside the *current* window — the events a window-isolated parallel
    execution would have to defer, i.e. the gap between this workload
    and perfect shard confinement.
    """

    def __init__(
        self,
        seed: int = 0,
        shards: int = 1,
        plan: Optional[ShardPlan] = None,
        window: float = 0.25,
    ) -> None:
        super().__init__(seed=seed)
        if window <= 0:
            raise SimulationError("barrier window must be positive")
        self.plan = plan if plan is not None else ShardPlan.hashed(shards)
        if self.plan.shard_count != shards:
            raise SimulationError(
                f"plan covers {self.plan.shard_count} shards, kernel "
                f"asked for {shards}"
            )
        self.shard_count = shards
        self.window = window
        self._queues: List[list] = [[] for _ in range(shards)]
        self._current_shard: Optional[int] = None
        self._window_end = window
        self._events_by_shard = [0] * shards
        self._cross_scheduled = 0
        self._cross_intra_window = 0
        self._barriers = 0
        self._streams: Dict[object, random.Random] = {}
        self._stream_salt = blake2b(
            str(seed).encode(), digest_size=16
        ).digest()

    # -- rng streams -----------------------------------------------------------

    def stream(self, key: object) -> random.Random:
        """Per-entity random stream derived from the root seed.

        Unlike the shared :attr:`rng`, an entity's stream yields the
        same draws no matter which shard it runs on or how other
        entities' events interleave — the property shard-confined
        parallel workloads need for shard-count-invariant results.
        """
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(
                _stable_hash(repr(key), salt=self._stream_salt)
            )
            self._streams[key] = stream
        return stream

    # -- scheduling ------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        handler: Handler,
        label: str = "",
        shard: Optional[str] = None,
    ) -> EventHandle:
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = self._checkout(self.now + delay, handler, label)
        dst = self.plan.shard_of(shard)
        heappush(self._queues[dst], (event.time, event.sequence, event))
        src = self._current_shard
        if src is not None and src != dst:
            self._cross_scheduled += 1
            if event.time < self._window_end:
                self._cross_intra_window += 1
        return EventHandle(self, event)

    def _note_cancelled(self) -> None:
        self._cancelled_pending += 1
        total = sum(len(queue) for queue in self._queues)
        if (
            self._cancelled_pending >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_pending * 2 >= total
        ):
            for queue in self._queues:
                live = [e for e in queue if not e[2].cancelled]
                for entry in queue:
                    if entry[2].cancelled:
                        self._recycle(entry[2])
                queue[:] = live
                heapify(queue)
            self._cancelled_pending = 0

    # -- execution ----------------------------------------------------------------

    def queue_depth(self) -> int:
        return (
            sum(len(queue) for queue in self._queues)
            - self._cancelled_pending
        )

    def _min_shard(self) -> int:
        """Index of the shard holding the globally earliest live event,
        or -1 when every queue is empty. Pops cancelled heads on the
        way (they must not win the merge)."""
        best = -1
        best_key: Optional[tuple] = None
        for idx, queue in enumerate(self._queues):
            while queue and queue[0][2].cancelled:
                entry = heappop(queue)
                self._cancelled_pending -= 1
                self._recycle(entry[2])
            if queue:
                key = (queue[0][0], queue[0][1])
                if best_key is None or key < best_key:
                    best_key = key
                    best = idx
        return best

    def step(self) -> bool:
        idx = self._min_shard()
        if idx < 0:
            return False
        time, _seq, event = heappop(self._queues[idx])
        if time < self.now:
            raise SimulationError("event queue went backwards in time")
        while time >= self._window_end:
            self._window_end += self.window
            self._barriers += 1
        self.now = time
        handler = event.handler
        self._recycle(event)
        self._current_shard = idx
        try:
            handler(self)
        finally:
            self._current_shard = None
        self.events_processed += 1
        self._events_by_shard[idx] += 1
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000_000,
    ) -> None:
        processed = 0
        _gc_quiesce()
        try:
            # step() inlined: the merge scan (_min_shard) is the
            # per-event overhead sharding adds, so pay it once per
            # event, not twice.
            while processed < max_events:
                idx = self._min_shard()
                if idx < 0:
                    break
                queue = self._queues[idx]
                time, _seq, event = queue[0]
                if until is not None and time > until:
                    break
                heappop(queue)
                if time < self.now:
                    raise SimulationError(
                        "event queue went backwards in time"
                    )
                while time >= self._window_end:
                    self._window_end += self.window
                    self._barriers += 1
                self.now = time
                handler = event.handler
                self._recycle(event)
                self._current_shard = idx
                try:
                    handler(self)
                finally:
                    self._current_shard = None
                self.events_processed += 1
                self._events_by_shard[idx] += 1
                processed += 1
        finally:
            _gc_restore()
        if processed >= max_events:
            idx = self._min_shard()
            if idx >= 0 and (
                until is None or self._queues[idx][0][0] <= until
            ):
                raise SimulationError(
                    f"event budget exhausted ({max_events} events) with "
                    f"work pending at t={self._queues[idx][0][0]:.3f}; "
                    "raise max_events or shrink the workload"
                )
        if until is not None and self.now < until:
            self.now = until

    # -- accounting ---------------------------------------------------------------

    def shard_stats(self) -> Dict[str, object]:
        """Partition quality of the run so far (NOT part of scenario
        fingerprints: the numbers legitimately depend on the shard
        count)."""
        total = self.events_processed
        cross = self._cross_scheduled
        return {
            "shards": self.shard_count,
            "window": self.window,
            "barriers": self._barriers,
            "events_by_shard": list(self._events_by_shard),
            "cross_shard_scheduled": cross,
            "cross_shard_intra_window": self._cross_intra_window,
            "cross_shard_fraction": cross / total if total else 0.0,
        }


# -- window-isolated parallel execution ------------------------------------------


@dataclass(frozen=True)
class CrossShardPacket:
    """A message crossing shard boundaries at a barrier.

    ``(time, origin_shard, origin_seq)`` totally orders packets — the
    merge key that makes parallel execution deterministic. ``payload``
    must be picklable when the runner forks workers.
    """

    time: float
    origin_shard: int
    origin_seq: int
    dst_shard: int
    dst_key: str
    payload: object

    @property
    def sort_key(self) -> tuple:
        return (self.time, self.origin_shard, self.origin_seq)


#: Builds one shard's runtime: ``build(shard_index, shard_count, seed)``.
#: The runtime must expose ``run_window(t_end, inbox) -> list[packet]``
#: and ``snapshot() -> dict`` (picklable summary, merged by the caller).
ShardRuntimeFactory = Callable[[int, int, int], object]


class ParallelShardRunner:
    """Advance shard runtimes in lockstep barrier windows.

    Serial mode runs every runtime in-process (always available, the
    reference semantics); ``processes=True`` forks one persistent
    worker per shard and drives them over pipes — same packets, same
    merge order, same results, just overlapping wall-clock. On hosts
    without the ``fork`` start method the runner silently falls back
    to serial execution.

    Causality: a packet emitted during window ``(t0, t1]`` must be
    timestamped after ``t1`` (guaranteed when every cross-shard latency
    is at least the window length). Violations raise
    :class:`~repro.errors.SimulationError` instead of warping time.
    """

    def __init__(
        self,
        build: ShardRuntimeFactory,
        shard_count: int,
        seed: int = 0,
        window: float = 0.25,
    ) -> None:
        if shard_count < 1:
            raise SimulationError("shard_count must be >= 1")
        if window <= 0:
            raise SimulationError("barrier window must be positive")
        self._build = build
        self.shard_count = shard_count
        self.seed = seed
        self.window = window
        self.barriers = 0
        self.packets_exchanged = 0

    def _route(
        self, outbox: List[CrossShardPacket], t_end: float
    ) -> List[List[CrossShardPacket]]:
        inboxes: List[List[CrossShardPacket]] = [
            [] for _ in range(self.shard_count)
        ]
        for packet in sorted(outbox, key=lambda p: p.sort_key):
            if not 0 <= packet.dst_shard < self.shard_count:
                raise SimulationError(
                    f"packet routed to shard {packet.dst_shard} of "
                    f"{self.shard_count}"
                )
            if packet.time < t_end:
                raise SimulationError(
                    f"causality violation: packet for t={packet.time:.6f} "
                    f"crossed the barrier at t={t_end:.6f}; shrink the "
                    "window below the minimum cross-shard latency"
                )
            inboxes[packet.dst_shard].append(packet)
        self.packets_exchanged += len(outbox)
        return inboxes

    def run(
        self, until: float, processes: bool = False
    ) -> List[Dict[str, object]]:
        """Run every shard to simulated time ``until``; returns the
        per-shard ``snapshot()`` dicts in shard order."""
        if until <= 0:
            raise SimulationError("until must be positive")
        if processes and self._fork_available():
            return self._run_forked(until)
        return self._run_serial(until)

    @staticmethod
    def _fork_available() -> bool:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()

    def _run_serial(self, until: float) -> List[Dict[str, object]]:
        runtimes = [
            self._build(i, self.shard_count, self.seed)
            for i in range(self.shard_count)
        ]
        inboxes: List[List[CrossShardPacket]] = [
            [] for _ in range(self.shard_count)
        ]
        t = 0.0
        while t < until:
            t_end = min(t + self.window, until)
            outbox: List[CrossShardPacket] = []
            for idx, runtime in enumerate(runtimes):
                outbox.extend(runtime.run_window(t_end, inboxes[idx]))
            inboxes = self._route(outbox, t_end)
            self.barriers += 1
            t = t_end
        return [runtime.snapshot() for runtime in runtimes]

    def _run_forked(self, until: float) -> List[Dict[str, object]]:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        pipes = []
        workers = []
        try:
            for idx in range(self.shard_count):
                parent_conn, child_conn = ctx.Pipe()
                worker = ctx.Process(
                    target=_shard_worker,
                    args=(
                        child_conn,
                        self._build,
                        idx,
                        self.shard_count,
                        self.seed,
                    ),
                    daemon=True,
                )
                worker.start()
                child_conn.close()
                pipes.append(parent_conn)
                workers.append(worker)
            inboxes: List[List[CrossShardPacket]] = [
                [] for _ in range(self.shard_count)
            ]
            t = 0.0
            while t < until:
                t_end = min(t + self.window, until)
                for idx, conn in enumerate(pipes):
                    conn.send(("window", t_end, inboxes[idx]))
                outbox: List[CrossShardPacket] = []
                for conn in pipes:
                    reply = conn.recv()
                    if reply[0] == "error":
                        raise SimulationError(
                            f"shard worker failed: {reply[1]}"
                        )
                    outbox.extend(reply[1])
                inboxes = self._route(outbox, t_end)
                self.barriers += 1
                t = t_end
            snapshots: List[Dict[str, object]] = []
            for conn in pipes:
                conn.send(("finish",))
                reply = conn.recv()
                if reply[0] == "error":
                    raise SimulationError(
                        f"shard worker failed: {reply[1]}"
                    )
                snapshots.append(reply[1])
            return snapshots
        finally:
            for conn in pipes:
                conn.close()
            for worker in workers:
                worker.join(timeout=5)
                if worker.is_alive():
                    worker.terminate()


def _shard_worker(conn, build, shard_index, shard_count, seed) -> None:
    """Worker loop: build the runtime once, then serve window commands."""
    try:
        runtime = build(shard_index, shard_count, seed)
        while True:
            command = conn.recv()
            if command[0] == "window":
                conn.send(("ok", runtime.run_window(command[1], command[2])))
            elif command[0] == "finish":
                conn.send(("ok", runtime.snapshot()))
                return
    except Exception as exc:  # surfaced to the driver, not swallowed
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass


# -- reference shard-confined workload ---------------------------------------------


class UniformRelayWorkload:
    """Shard-confined relay fanout: the parallel runner's benchmark load.

    ``node_count`` nodes each publish every ``interval`` seconds
    (per-node phase and destinations drawn from per-node streams, so
    results are invariant in the shard count); every publish fans out
    to ``fanout`` uniformly random nodes with fixed ``latency``.
    Deliveries to local nodes are simulated directly on the shard's
    private :class:`Simulator`; the rest cross the barrier as
    :class:`CrossShardPacket`. Requires ``latency >= window``.
    """

    def __init__(
        self,
        node_count: int,
        interval: float = 1.0,
        fanout: int = 4,
        latency: float = 0.3,
    ) -> None:
        self.node_count = node_count
        self.interval = interval
        self.fanout = fanout
        self.latency = latency

    def build(
        self, shard_index: int, shard_count: int, seed: int
    ) -> "_UniformRelayRuntime":
        return _UniformRelayRuntime(self, shard_index, shard_count, seed)


class _UniformRelayRuntime:
    def __init__(
        self,
        workload: UniformRelayWorkload,
        shard_index: int,
        shard_count: int,
        seed: int,
    ) -> None:
        self._w = workload
        self._shard = shard_index
        self._shards = shard_count
        salt = blake2b(str(seed).encode(), digest_size=16).digest()
        self.sim = Simulator(seed=seed)
        self._seq = 0
        block = -(-workload.node_count // shard_count)
        local = range(
            shard_index * block,
            min((shard_index + 1) * block, workload.node_count),
        )
        self.delivered: Dict[int, int] = {node: 0 for node in local}
        self.published = 0
        self._outbox: List[CrossShardPacket] = []
        # One persistent stream per local node: all of a node's draws
        # (phase, then fanout targets per publish) come from it in
        # publish order, which is what makes the workload's results
        # independent of the shard count.
        self._streams: Dict[int, random.Random] = {
            node: random.Random(_stable_hash(f"node-{node}", salt=salt))
            for node in local
        }
        for node in local:
            self.sim.schedule(
                self._streams[node].uniform(0, workload.interval),
                lambda sim, n=node: self._publish(n),
                label=f"publish:{node}",
            )

    def _shard_of(self, node: int) -> int:
        block = -(-self._w.node_count // self._shards)
        return min(node // block, self._shards - 1)

    def _publish(self, node: int) -> None:
        w = self._w
        stream = self._streams[node]
        self.published += 1
        for _ in range(w.fanout):
            target = stream.randrange(w.node_count)
            if self._shard_of(target) == self._shard:
                self.sim.schedule(
                    w.latency,
                    lambda sim, n=target: self._deliver(n),
                    label=f"deliver:{target}",
                )
            else:
                self._seq += 1
                self._outbox.append(
                    CrossShardPacket(
                        time=self.sim.now + w.latency,
                        origin_shard=self._shard,
                        origin_seq=self._seq,
                        dst_shard=self._shard_of(target),
                        dst_key=str(target),
                        payload=None,
                    )
                )
        self.sim.schedule(
            w.interval,
            lambda sim, n=node: self._publish(n),
            label=f"publish:{node}",
        )

    def run_window(self, t_end: float, inbox) -> List[CrossShardPacket]:
        for packet in inbox:
            self.sim.schedule_at(
                packet.time,
                lambda sim, p=packet: self._deliver(int(p.dst_key)),
                label=f"deliver:{packet.dst_key}",
            )
        self._outbox = []
        self.sim.run(until=t_end)
        return self._outbox

    def _deliver(self, node: int) -> None:
        self.delivered[node] += 1

    def snapshot(self) -> Dict[str, object]:
        return {
            "shard": self._shard,
            "published": self.published,
            "delivered": dict(self.delivered),
        }
