"""Lightweight counters and samples for experiment harnesses."""

from __future__ import annotations

import math
from array import array
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Histogram:
    """Collects float samples; summarises on demand.

    Summary statistics are cached between observations: the running
    sum / min / max update in O(1) per :meth:`observe`, and the sorted
    view percentiles read from is built once and invalidated by the
    next observation — repeated queries (a per-epoch summary asking for
    several percentiles) no longer re-sort or re-scan the sample list
    each call. All cached values are bit-identical to the naive
    recomputation: the running sum adds in the same left-to-right order
    ``sum(samples)`` would. Appending to ``samples`` directly (instead
    of through ``observe``) is detected by a length check and triggers
    a full rebuild.
    """

    samples: Sequence[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Contiguous C doubles instead of a list of boxed floats: a
        # large run accumulates millions of latency samples, and the
        # array stores them in a quarter of the memory with no
        # pointer-chasing. Python floats are C doubles, so every
        # statistic computed from the array is bit-identical to the
        # list version.
        self.samples = array("d", self.samples)
        self._rebuild()

    def _rebuild(self) -> None:
        samples = self.samples
        self._n = len(samples)
        total = 0.0
        for value in samples:
            total += value
        self._sum = total
        self._min = min(samples) if samples else 0.0
        self._max = max(samples) if samples else 0.0
        self._sorted: Optional[List[float]] = None

    def _sync(self) -> None:
        if self._n != len(self.samples):
            self._rebuild()

    def observe(self, value: float) -> None:
        if self._n != len(self.samples):  # inline _sync: hot path
            self._rebuild()
        self.samples.append(value)
        if self._n == 0:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._n += 1
        self._sum += value
        self._sorted = None

    def _ordered(self) -> List[float]:
        self._sync()
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        self._sync()
        return self._sum / self._n if self._n else 0.0

    @property
    def minimum(self) -> float:
        self._sync()
        return self._min

    @property
    def maximum(self) -> float:
        self._sync()
        return self._max

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        ordered = self._ordered()
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.samples) / (
            len(self.samples) - 1
        )
        return math.sqrt(variance)


class QuantileSketch:
    """Mergeable log-bucketed quantile sketch (DDSketch-style).

    Positive values land in bucket ``ceil(log_gamma(v))``; with
    ``gamma = 1.02`` any reported quantile is within ~1% relative error
    of the exact one, from a dict that holds at most a few thousand
    counts no matter how many samples stream through. Zero and negative
    values (deltas, clock skews) get their own zero counter / mirrored
    negative buckets. Fully deterministic — same observations in any
    order produce the same sketch — and two sketches over disjoint
    streams merge by adding counts.
    """

    __slots__ = ("_gamma", "_log_gamma", "_pos", "_neg", "_zero")

    def __init__(self, gamma: float = 1.02) -> None:
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        self._gamma = gamma
        self._log_gamma = math.log(gamma)
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}
        self._zero = 0

    def observe(self, value: float) -> None:
        if value > 0.0:
            key = math.ceil(math.log(value) / self._log_gamma)
            self._pos[key] = self._pos.get(key, 0) + 1
        elif value < 0.0:
            key = math.ceil(math.log(-value) / self._log_gamma)
            self._neg[key] = self._neg.get(key, 0) + 1
        else:
            self._zero += 1

    @property
    def count(self) -> int:
        return (
            self._zero
            + sum(self._pos.values())
            + sum(self._neg.values())
        )

    @property
    def bucket_count(self) -> int:
        """Live buckets — the sketch's actual state size."""
        return len(self._pos) + len(self._neg) + (1 if self._zero else 0)

    def merge(self, other: "QuantileSketch") -> None:
        if other._gamma != self._gamma:
            raise ValueError("cannot merge sketches of different gamma")
        for key, n in other._pos.items():
            self._pos[key] = self._pos.get(key, 0) + n
        for key, n in other._neg.items():
            self._neg[key] = self._neg.get(key, 0) + n
        self._zero += other._zero

    def _bucket_value(self, key: int, sign: int) -> float:
        # Geometric bucket midpoint: within gamma of every sample that
        # hashed into the bucket.
        return sign * 2.0 * self._gamma ** key / (1.0 + self._gamma)

    def quantile(self, q: float) -> float:
        """Value at quantile ``q`` in [0, 100], within ~gamma-1 relative."""
        total = self.count
        if total == 0:
            return 0.0
        rank = (q / 100.0) * (total - 1)
        seen = 0
        for key in sorted(self._neg, reverse=True):
            seen += self._neg[key]
            if seen > rank:
                return self._bucket_value(key, -1)
        if self._zero:
            seen += self._zero
            if seen > rank:
                return 0.0
        for key in sorted(self._pos):
            seen += self._pos[key]
            if seen > rank:
                return self._bucket_value(key, 1)
        # rank == total - 1 lands here only through float round-off.
        return self.maximum_bucket()

    def maximum_bucket(self) -> float:
        if self._pos:
            return self._bucket_value(max(self._pos), 1)
        if self._zero:
            return 0.0
        if self._neg:
            return self._bucket_value(min(self._neg), -1)
        return 0.0


class StreamingHistogram:
    """Bounded-memory drop-in for :class:`Histogram`.

    Keeps running moments (Welford) for count / mean / stddev, exact
    min / max, and a :class:`QuantileSketch` for percentiles — O(1)
    state per metric regardless of how many samples a 10k-epoch run
    produces. ``mean``/``stddev`` match :class:`Histogram` to floating-
    point accumulation order; ``percentile`` is approximate (~1%
    relative), which the scenario summaries round away. Selected per
    run by ``ScenarioSpec.streaming_metrics``.
    """

    __slots__ = ("_n", "_mean", "_m2", "_min", "_max", "sketch")

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = 0.0
        self._max = 0.0
        self.sketch = QuantileSketch()

    def observe(self, value: float) -> None:
        if self._n == 0:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        self.sketch.observe(value)

    @property
    def count(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return self._mean if self._n else 0.0

    @property
    def minimum(self) -> float:
        return self._min

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def stddev(self) -> float:
        if self._n < 2:
            return 0.0
        return math.sqrt(self._m2 / (self._n - 1))

    def percentile(self, q: float) -> float:
        """Sketch-backed percentile; exact at the endpoints."""
        if self._n == 0:
            return 0.0
        if q <= 0.0:
            return self._min
        if q >= 100.0:
            return self._max
        return self.sketch.quantile(q)

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another stream in (parallel-worker reduction)."""
        if other._n == 0:
            return
        if self._n == 0:
            self._min, self._max = other._min, other._max
        else:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        n = self._n + other._n
        delta = other._mean - self._mean
        self._mean += delta * other._n / n
        self._m2 += other._m2 + delta * delta * self._n * other._n / n
        self._n = n
        self.sketch.merge(other.sketch)

    def storage_bytes(self) -> int:
        """Rough live-state size: fixed fields + sketch buckets."""
        return 48 + 16 * self.sketch.bucket_count


class BoundedSeries:
    """A time series capped at ``max_points`` by deterministic decimation.

    Appends are O(1) amortised; when the cap is hit, every second
    retained point is dropped and the sampling stride doubles, so the
    series always covers the full run at uniform spacing with between
    ``max_points / 2`` and ``max_points`` entries. Decimation depends
    only on the append sequence — never on time or randomness — so
    repeated runs retain identical points.
    """

    def __init__(self, max_points: int = 256) -> None:
        if max_points < 4:
            raise ValueError("max_points must be at least 4")
        self.max_points = max_points
        self._items: List = []
        self._stride = 1
        self._pending = 0
        #: Total points offered, including decimated ones (stat).
        self.offered = 0

    def append(self, item) -> None:
        self.offered += 1
        self._pending += 1
        if self._pending < self._stride:
            return
        self._pending = 0
        self._items.append(item)
        if len(self._items) >= self.max_points:
            # Keep odd positions: with the doubled stride, future
            # appends continue the same uniform spacing.
            self._items = self._items[1::2]
            self._stride *= 2

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __getitem__(self, index):
        return self._items[index]


@dataclass
class MetricsRegistry:
    """Named counters and histograms shared across a simulation."""

    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    histograms: Dict[str, Histogram] = field(
        default_factory=lambda: defaultdict(Histogram)
    )

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].observe(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def use_streaming(self) -> None:
        """Switch histogram storage to bounded streaming accumulators.

        Must be called before any samples are recorded (the harness
        calls it right after construction): a retroactive switch would
        silently discard sample lists.
        """
        for name, hist in self.histograms.items():
            if hist.count:
                raise ValueError(
                    f"cannot switch histogram {name!r} to streaming "
                    f"after it has recorded samples"
                )
        fresh: Dict[str, StreamingHistogram] = defaultdict(
            StreamingHistogram
        )
        for name in self.histograms:
            fresh[name] = StreamingHistogram()
        self.histograms = fresh

    def summary(self) -> Dict[str, float]:
        """Flat dict of every counter and histogram mean (for tables)."""
        out: Dict[str, float] = dict(self.counters)
        for name, hist in self.histograms.items():
            if hist.count:
                out[f"{name}.mean"] = hist.mean
                out[f"{name}.p99"] = hist.percentile(99)
        return out
