"""Lightweight counters and samples for experiment harnesses."""

from __future__ import annotations

import math
from array import array
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Histogram:
    """Collects float samples; summarises on demand.

    Summary statistics are cached between observations: the running
    sum / min / max update in O(1) per :meth:`observe`, and the sorted
    view percentiles read from is built once and invalidated by the
    next observation — repeated queries (a per-epoch summary asking for
    several percentiles) no longer re-sort or re-scan the sample list
    each call. All cached values are bit-identical to the naive
    recomputation: the running sum adds in the same left-to-right order
    ``sum(samples)`` would. Appending to ``samples`` directly (instead
    of through ``observe``) is detected by a length check and triggers
    a full rebuild.
    """

    samples: Sequence[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Contiguous C doubles instead of a list of boxed floats: a
        # large run accumulates millions of latency samples, and the
        # array stores them in a quarter of the memory with no
        # pointer-chasing. Python floats are C doubles, so every
        # statistic computed from the array is bit-identical to the
        # list version.
        self.samples = array("d", self.samples)
        self._rebuild()

    def _rebuild(self) -> None:
        samples = self.samples
        self._n = len(samples)
        total = 0.0
        for value in samples:
            total += value
        self._sum = total
        self._min = min(samples) if samples else 0.0
        self._max = max(samples) if samples else 0.0
        self._sorted: Optional[List[float]] = None

    def _sync(self) -> None:
        if self._n != len(self.samples):
            self._rebuild()

    def observe(self, value: float) -> None:
        if self._n != len(self.samples):  # inline _sync: hot path
            self._rebuild()
        self.samples.append(value)
        if self._n == 0:
            self._min = value
            self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._n += 1
        self._sum += value
        self._sorted = None

    def _ordered(self) -> List[float]:
        self._sync()
        if self._sorted is None:
            self._sorted = sorted(self.samples)
        return self._sorted

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        self._sync()
        return self._sum / self._n if self._n else 0.0

    @property
    def minimum(self) -> float:
        self._sync()
        return self._min

    @property
    def maximum(self) -> float:
        self._sync()
        return self._max

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        ordered = self._ordered()
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.samples) / (
            len(self.samples) - 1
        )
        return math.sqrt(variance)


@dataclass
class MetricsRegistry:
    """Named counters and histograms shared across a simulation."""

    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    histograms: Dict[str, Histogram] = field(
        default_factory=lambda: defaultdict(Histogram)
    )

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].observe(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def summary(self) -> Dict[str, float]:
        """Flat dict of every counter and histogram mean (for tables)."""
        out: Dict[str, float] = dict(self.counters)
        for name, hist in self.histograms.items():
            if hist.count:
                out[f"{name}.mean"] = hist.mean
                out[f"{name}.p99"] = hist.percentile(99)
        return out
