"""Lightweight counters and samples for experiment harnesses."""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class Histogram:
    """Collects float samples; summarises on demand."""

    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Linear-interpolated percentile, ``q`` in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = math.floor(rank)
        high = math.ceil(rank)
        if low == high:
            return ordered[low]
        weight = rank - low
        return ordered[low] * (1 - weight) + ordered[high] * weight

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mean = self.mean
        variance = sum((s - mean) ** 2 for s in self.samples) / (
            len(self.samples) - 1
        )
        return math.sqrt(variance)


@dataclass
class MetricsRegistry:
    """Named counters and histograms shared across a simulation."""

    counters: Dict[str, int] = field(default_factory=lambda: defaultdict(int))
    histograms: Dict[str, Histogram] = field(
        default_factory=lambda: defaultdict(Histogram)
    )

    def increment(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def observe(self, name: str, value: float) -> None:
        self.histograms[name].observe(value)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram:
        return self.histograms[name]

    def summary(self) -> Dict[str, float]:
        """Flat dict of every counter and histogram mean (for tables)."""
        out: Dict[str, float] = dict(self.counters)
        for name, hist in self.histograms.items():
            if hist.count:
                out[f"{name}.mean"] = hist.mean
                out[f"{name}.p99"] = hist.percentile(99)
        return out
