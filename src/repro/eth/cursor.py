"""One tested implementation of "where was I in the event log".

Every chain observer in the reproduction — peers syncing their
membership replica, the adversary engine routing ``MemberRemoved``
events to its agents, watchtower services enforcing on behalf of
delegators — polls :meth:`Blockchain.events_since` and advances a
high-water mark past the events it consumed. :class:`EventCursor`
factors that bookkeeping into one place: it remembers the next
``log_index`` to read, optionally filters to one contract's events,
and exposes the position as a plain integer so event-sourced services
(the watchtower store) can persist it and resume exactly where a
crashed process left off.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from .chain import Blockchain, Event


class EventCursor:
    """A resumable read position in a chain's append-only event log.

    ``poll()`` returns the events appended since the last poll —
    filtered to ``contract`` when one is given — and advances the
    cursor past *everything* it saw, matching events or not, so the
    next poll is O(new events) regardless of how many foreign
    contracts log in between. ``log_index`` is the single piece of
    state: copy it to clone a position, persist it to survive a
    restart, pass it back via ``start`` to resume.
    """

    __slots__ = ("chain", "contract", "log_index")

    _NO_EVENTS: Tuple[Event, ...] = ()

    def __init__(
        self,
        chain: Blockchain,
        contract: Optional[str] = None,
        start: int = 0,
    ) -> None:
        if start < 0:
            raise ValueError("cursor cannot start before the log")
        self.chain = chain
        self.contract = contract
        self.log_index = start

    def poll(self) -> Tuple[Event, ...]:
        """Consume and return events appended since the last poll."""
        events = self.chain.events_since(self.log_index)
        if not events:
            return events
        self.log_index = events[-1].log_index + 1
        contract = self.contract
        if contract is None:
            return events
        matching = tuple(e for e in events if e.contract == contract)
        return matching if matching else self._NO_EVENTS

    def catch_up(self, handler: Callable[[Event], None]) -> int:
        """Replay every pending (filtered) event through ``handler``.

        Returns the number of events handled. This is the one-call
        form of the poll loop every event-sourced replica runs after a
        gap — a watchtower restart, or a parallel worker rebuilding a
        chain replica's derived state from a committed position.
        """
        count = 0
        for event in self.poll():
            handler(event)
            count += 1
        return count

    def peek_pending(self) -> bool:
        """Whether a poll right now would return anything new
        (filter included) — without moving the cursor."""
        events = self.chain.events_since(self.log_index)
        if self.contract is None:
            return bool(events)
        return any(e.contract == self.contract for e in events)

    @property
    def caught_up(self) -> bool:
        """True when the cursor sits at the head of the log."""
        return self.log_index >= len(self.chain.event_log)

    def seek(self, log_index: int) -> None:
        """Move to an absolute position (restart/replay paths)."""
        if log_index < 0:
            raise ValueError("cursor cannot seek before the log")
        self.log_index = log_index

    def clone(self) -> "EventCursor":
        """An independent cursor at the same position."""
        return EventCursor(self.chain, self.contract, self.log_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EventCursor(log_index={self.log_index}, "
            f"contract={self.contract!r})"
        )
