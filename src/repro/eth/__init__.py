"""Simulated Ethereum: gas-metered chain, membership contracts, events."""

from .chain import (
    Account,
    Block,
    Blockchain,
    Contract,
    Event,
    Receipt,
    Transaction,
    TxContext,
)
from .cursor import EventCursor
from .contracts import (
    MembershipContractBase,
    MembershipRegistry,
    OnChainTreeContract,
)
from .gas import DEFAULT_GAS_SCHEDULE, GasMeter, GasSchedule

__all__ = [
    "Blockchain",
    "Account",
    "Block",
    "Contract",
    "Event",
    "EventCursor",
    "Receipt",
    "Transaction",
    "TxContext",
    "MembershipContractBase",
    "MembershipRegistry",
    "OnChainTreeContract",
    "GasSchedule",
    "GasMeter",
    "DEFAULT_GAS_SCHEDULE",
]
