"""Single-node blockchain simulation.

Provides what Waku-RLN-Relay needs from Ethereum and nothing more:

* externally-owned accounts with ether balances;
* contracts (Python objects) invoked through metered transactions;
* a mempool and a block producer with a configurable block interval,
  so the "messages must be mined before being visible" comparison of
  Section III can be simulated;
* an append-only event log that peers poll to synchronise their local
  membership trees ("the membership contract emits update events").

Two execution styles are supported: :meth:`Blockchain.transact` queues a
transaction and executes it at the next :meth:`mine_block` (faithful
latency), while :meth:`Blockchain.call_now` mines immediately (handy in
unit tests and gas measurements, where only costs matter).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ChainError, ContractError
from .gas import DEFAULT_GAS_SCHEDULE, GasMeter, GasSchedule


@dataclass
class Account:
    """An externally-owned account."""

    address: str
    balance: int = 0
    nonce: int = 0


@dataclass(frozen=True)
class Event:
    """One contract log entry."""

    name: str
    args: Dict[str, Any]
    contract: str
    block_number: int
    log_index: int


@dataclass
class Receipt:
    """Outcome of one executed transaction."""

    tx_hash: int
    success: bool
    gas_used: int
    block_number: int
    return_value: Any = None
    error: Optional[str] = None
    events: Tuple[Event, ...] = ()


@dataclass
class Transaction:
    """A queued contract call."""

    sender: str
    contract: str
    method: str
    args: Tuple[Any, ...]
    value: int = 0
    calldata_bytes: int = 68
    tx_hash: int = field(default_factory=itertools.count().__next__)
    #: Simulation time when the tx entered the mempool (for latency stats).
    submitted_at: float = 0.0


class TxContext:
    """Execution context handed to contract methods.

    Wraps the gas meter, value transfer and event emission so contract
    code reads like Solidity: ``ctx.sload``, ``ctx.sstore``,
    ``ctx.emit``, ``ctx.transfer``, ``ctx.burn``, ``ctx.require``.
    """

    def __init__(
        self,
        chain: "Blockchain",
        contract: "Contract",
        sender: str,
        value: int,
        meter: GasMeter,
    ) -> None:
        self.chain = chain
        self.contract = contract
        self.sender = sender
        self.value = value
        self.meter = meter
        self.events: List[Event] = []

    # -- storage ------------------------------------------------------------

    def sload(self, slot: Any) -> Any:
        self.meter.charge_sload((self.contract.address, slot))
        return self.contract.storage.get(slot, 0)

    def sstore(self, slot: Any, value: Any) -> None:
        was = self.contract.storage.get(slot, 0)
        was_zero = was == 0
        now_zero = value == 0
        self.meter.charge_sstore((self.contract.address, slot), was_zero, now_zero)
        if now_zero:
            self.contract.storage.pop(slot, None)
        else:
            self.contract.storage[slot] = value

    # -- environment -----------------------------------------------------------

    def keccak(self, data_bytes: int) -> None:
        """Charge for one keccak over ``data_bytes`` bytes."""
        self.meter.charge(self.meter.schedule.keccak_cost(data_bytes))

    def poseidon(self) -> None:
        """Charge for one zk-friendly (circuit) hash evaluated on-chain."""
        self.meter.charge(self.meter.schedule.poseidon_hash)

    def emit(self, name: str, **args: Any) -> None:
        data_bytes = 32 * len(args)
        self.meter.charge(self.meter.schedule.log_cost(1 + len(args), data_bytes))
        self.events.append(
            Event(
                name=name,
                args=args,
                contract=self.contract.address,
                block_number=self.chain.block_number + 1,
                log_index=-1,  # assigned when the block is sealed
            )
        )

    def transfer(self, to: str, amount: int) -> None:
        """Move ether from the contract's balance to ``to``."""
        self.meter.charge(self.meter.schedule.call_value_transfer)
        if self.contract.balance < amount:
            raise ContractError("contract balance too low for transfer")
        self.contract.balance -= amount
        self.chain.get_account(to).balance += amount

    def burn(self, amount: int) -> None:
        """Destroy ether held by the contract (send to the zero address)."""
        if self.contract.balance < amount:
            raise ContractError("contract balance too low for burn")
        self.contract.balance -= amount
        self.chain.burnt_wei += amount

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ContractError(message)


class Contract:
    """Base class for simulated contracts.

    Subclasses implement public methods taking ``(ctx, *args)``; storage
    access must go through ``ctx`` so gas is metered.
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self.storage: Dict[Any, Any] = {}
        self.balance = 0


@dataclass
class Block:
    number: int
    timestamp: float
    receipts: Tuple[Receipt, ...]


class Blockchain:
    """The simulated chain: accounts, contracts, mempool, blocks, logs."""

    def __init__(
        self,
        schedule: GasSchedule = DEFAULT_GAS_SCHEDULE,
        block_interval: float = 13.0,
    ) -> None:
        self.schedule = schedule
        self.block_interval = block_interval
        self.accounts: Dict[str, Account] = {}
        self.contracts: Dict[str, Contract] = {}
        self.mempool: List[Transaction] = []
        self.blocks: List[Block] = []
        self.event_log: List[Event] = []
        self.receipts: Dict[int, Receipt] = {}
        self.burnt_wei = 0

    # -- accounts ------------------------------------------------------------

    def create_account(self, address: str, balance: int = 0) -> Account:
        if address in self.accounts:
            raise ChainError(f"account {address!r} already exists")
        account = Account(address=address, balance=balance)
        self.accounts[address] = account
        return account

    def get_account(self, address: str) -> Account:
        if address not in self.accounts:
            raise ChainError(f"unknown account {address!r}")
        return self.accounts[address]

    # -- contracts -------------------------------------------------------------

    def deploy(self, contract: Contract) -> Contract:
        if contract.address in self.contracts:
            raise ChainError(f"contract {contract.address!r} already deployed")
        self.contracts[contract.address] = contract
        return contract

    # -- transaction submission ---------------------------------------------------

    @property
    def block_number(self) -> int:
        return len(self.blocks)

    def transact(
        self,
        sender: str,
        contract: str,
        method: str,
        *args: Any,
        value: int = 0,
        calldata_bytes: int = 68,
        submitted_at: float = 0.0,
    ) -> Transaction:
        """Queue a transaction; it executes at the next mined block."""
        if contract not in self.contracts:
            raise ChainError(f"unknown contract {contract!r}")
        self.get_account(sender)  # must exist
        tx = Transaction(
            sender=sender,
            contract=contract,
            method=method,
            args=args,
            value=value,
            calldata_bytes=calldata_bytes,
            submitted_at=submitted_at,
        )
        self.mempool.append(tx)
        return tx

    def call_now(
        self,
        sender: str,
        contract: str,
        method: str,
        *args: Any,
        value: int = 0,
        calldata_bytes: int = 68,
    ) -> Receipt:
        """Submit and immediately mine a single-transaction block."""
        tx = self.transact(
            sender, contract, method, *args,
            value=value, calldata_bytes=calldata_bytes,
        )
        self.mine_block()
        return self.receipts[tx.tx_hash]

    # -- block production ------------------------------------------------------------

    def mine_block(self, timestamp: Optional[float] = None) -> Block:
        """Execute every pending transaction into a new block."""
        if timestamp is None:
            timestamp = self.block_number * self.block_interval
        receipts = tuple(self._execute(tx) for tx in self.mempool)
        self.mempool.clear()
        block = Block(
            number=self.block_number, timestamp=timestamp, receipts=receipts
        )
        self.blocks.append(block)
        return block

    def _execute(self, tx: Transaction) -> Receipt:
        contract = self.contracts[tx.contract]
        sender = self.get_account(tx.sender)
        meter = GasMeter(self.schedule)
        meter.charge(self.schedule.tx_base)
        meter.charge(self.schedule.calldata_cost(tx.calldata_bytes))

        ctx = TxContext(self, contract, tx.sender, tx.value, meter)
        handler: Optional[Callable] = getattr(contract, tx.method, None)
        success = True
        return_value = None
        error = None
        balance_before = sender.balance
        contract_balance_before = contract.balance
        burnt_before = self.burnt_wei
        storage_before = dict(contract.storage)
        try:
            if handler is None or tx.method.startswith("_"):
                raise ContractError(f"no such method {tx.method!r}")
            if sender.balance < tx.value:
                raise ContractError("insufficient balance for msg.value")
            sender.balance -= tx.value
            contract.balance += tx.value
            return_value = handler(ctx, *tx.args)
        except ContractError as exc:
            # Revert: restore balances and storage, keep the gas.
            success = False
            error = str(exc)
            sender.balance = balance_before
            contract.balance = contract_balance_before
            self.burnt_wei = burnt_before
            contract.storage.clear()
            contract.storage.update(storage_before)
            ctx.events.clear()
        gas_used = meter.finalize()
        events = []
        for event in ctx.events:
            sealed = Event(
                name=event.name,
                args=event.args,
                contract=event.contract,
                block_number=self.block_number,
                log_index=len(self.event_log),
            )
            self.event_log.append(sealed)
            events.append(sealed)
        receipt = Receipt(
            tx_hash=tx.tx_hash,
            success=success,
            gas_used=gas_used,
            block_number=self.block_number,
            return_value=return_value,
            error=error,
            events=tuple(events),
        )
        self.receipts[tx.tx_hash] = receipt
        return receipt

    # -- value transfers --------------------------------------------------------------

    def transfer_value(self, sender: str, to: str, amount: int) -> None:
        """Move ether directly between externally-owned accounts.

        Plain value sends (delegation fees, watchtower payouts) — no
        contract, no mempool latency, no gas modelled; both accounts
        must already exist.
        """
        if amount < 0:
            raise ChainError("cannot transfer a negative amount")
        src = self.get_account(sender)
        dst = self.get_account(to)
        if src.balance < amount:
            raise ChainError(
                f"account {sender!r} holds {src.balance} wei; "
                f"cannot transfer {amount}"
            )
        src.balance -= amount
        dst.balance += amount

    # -- log access -----------------------------------------------------------------

    #: Shared zero-allocation result for the (overwhelmingly common)
    #: caught-up poll.
    _NO_EVENTS: Tuple[Event, ...] = ()

    def events_since(self, log_index: int) -> Tuple[Event, ...]:
        """Events with ``log_index >= log_index`` (peer sync polling).

        Returns an immutable view; the hot caught-up case (peers, the
        adversary engine and watchtowers all poll every few simulated
        seconds, events arrive only when a block seals) costs no
        allocation at all.
        """
        log = self.event_log
        if log_index >= len(log):
            return self._NO_EVENTS
        return tuple(log[log_index:])
