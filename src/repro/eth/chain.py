"""Single-node blockchain simulation.

Provides what Waku-RLN-Relay needs from Ethereum and nothing more:

* externally-owned accounts with ether balances;
* contracts (Python objects) invoked through metered transactions;
* a mempool and a block producer with a configurable block interval,
  so the "messages must be mined before being visible" comparison of
  Section III can be simulated;
* an append-only event log that peers poll to synchronise their local
  membership trees ("the membership contract emits update events").

Two execution styles are supported: :meth:`Blockchain.transact` queues a
transaction and executes it at the next :meth:`mine_block` (faithful
latency), while :meth:`Blockchain.call_now` mines immediately (handy in
unit tests and gas measurements, where only costs matter).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ChainError, ContractError
from .gas import DEFAULT_GAS_SCHEDULE, GasMeter, GasSchedule

#: One replicated chain mutation: ``(kind, order_key, payload)`` where
#: ``kind`` is ``"tx"`` (payload: a :class:`Transaction`) or
#: ``"transfer"`` (payload: ``(sender, to, amount)``) and ``order_key``
#: is the partition-invariant ``(time, origin, seq)`` the parallel
#: kernel assigns. Plain tuples so ops pickle across worker pipes.
ReplicaOp = Tuple[str, Tuple[float, str, int], Any]


def _canonical_tx_hash(origin: str, seq: int) -> int:
    """Deterministic tx hash derived from the op's origin key.

    Replicas executing the same op stream must agree on every
    ``tx_hash`` (receipts are looked up by it), and forked workers
    cannot share the process-local counter the serial chain uses.
    """
    digest = blake2b(
        f"tx:{origin}:{seq}".encode(), digest_size=8
    ).digest()
    # Keep it within a signed 64-bit integer: consumers persist tx
    # hashes in sqlite (the watchtower evidence store).
    return int.from_bytes(digest, "big") >> 1


@dataclass
class Account:
    """An externally-owned account."""

    address: str
    balance: int = 0
    nonce: int = 0


@dataclass(frozen=True)
class Event:
    """One contract log entry."""

    name: str
    args: Dict[str, Any]
    contract: str
    block_number: int
    log_index: int


@dataclass
class Receipt:
    """Outcome of one executed transaction."""

    tx_hash: int
    success: bool
    gas_used: int
    block_number: int
    return_value: Any = None
    error: Optional[str] = None
    events: Tuple[Event, ...] = ()


@dataclass
class Transaction:
    """A queued contract call."""

    sender: str
    contract: str
    method: str
    args: Tuple[Any, ...]
    value: int = 0
    calldata_bytes: int = 68
    tx_hash: int = field(default_factory=itertools.count().__next__)
    #: Simulation time when the tx entered the mempool (for latency stats).
    submitted_at: float = 0.0


class TxContext:
    """Execution context handed to contract methods.

    Wraps the gas meter, value transfer and event emission so contract
    code reads like Solidity: ``ctx.sload``, ``ctx.sstore``,
    ``ctx.emit``, ``ctx.transfer``, ``ctx.burn``, ``ctx.require``.
    """

    def __init__(
        self,
        chain: "Blockchain",
        contract: "Contract",
        sender: str,
        value: int,
        meter: GasMeter,
    ) -> None:
        self.chain = chain
        self.contract = contract
        self.sender = sender
        self.value = value
        self.meter = meter
        self.events: List[Event] = []

    # -- storage ------------------------------------------------------------

    def sload(self, slot: Any) -> Any:
        self.meter.charge_sload((self.contract.address, slot))
        return self.contract.storage.get(slot, 0)

    def sstore(self, slot: Any, value: Any) -> None:
        was = self.contract.storage.get(slot, 0)
        was_zero = was == 0
        now_zero = value == 0
        self.meter.charge_sstore((self.contract.address, slot), was_zero, now_zero)
        if now_zero:
            self.contract.storage.pop(slot, None)
        else:
            self.contract.storage[slot] = value

    # -- environment -----------------------------------------------------------

    def keccak(self, data_bytes: int) -> None:
        """Charge for one keccak over ``data_bytes`` bytes."""
        self.meter.charge(self.meter.schedule.keccak_cost(data_bytes))

    def poseidon(self) -> None:
        """Charge for one zk-friendly (circuit) hash evaluated on-chain."""
        self.meter.charge(self.meter.schedule.poseidon_hash)

    def emit(self, name: str, **args: Any) -> None:
        data_bytes = 32 * len(args)
        self.meter.charge(self.meter.schedule.log_cost(1 + len(args), data_bytes))
        self.events.append(
            Event(
                name=name,
                args=args,
                contract=self.contract.address,
                block_number=self.chain.block_number + 1,
                log_index=-1,  # assigned when the block is sealed
            )
        )

    def transfer(self, to: str, amount: int) -> None:
        """Move ether from the contract's balance to ``to``."""
        self.meter.charge(self.meter.schedule.call_value_transfer)
        if self.contract.balance < amount:
            raise ContractError("contract balance too low for transfer")
        self.contract.balance -= amount
        self.chain.get_account(to).balance += amount

    def burn(self, amount: int) -> None:
        """Destroy ether held by the contract (send to the zero address)."""
        if self.contract.balance < amount:
            raise ContractError("contract balance too low for burn")
        self.contract.balance -= amount
        self.chain.burnt_wei += amount

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ContractError(message)


class Contract:
    """Base class for simulated contracts.

    Subclasses implement public methods taking ``(ctx, *args)``; storage
    access must go through ``ctx`` so gas is metered.
    """

    def __init__(self, address: str) -> None:
        self.address = address
        self.storage: Dict[Any, Any] = {}
        self.balance = 0


@dataclass
class Block:
    number: int
    timestamp: float
    receipts: Tuple[Receipt, ...]


class Blockchain:
    """The simulated chain: accounts, contracts, mempool, blocks, logs."""

    def __init__(
        self,
        schedule: GasSchedule = DEFAULT_GAS_SCHEDULE,
        block_interval: float = 13.0,
    ) -> None:
        self.schedule = schedule
        self.block_interval = block_interval
        self.accounts: Dict[str, Account] = {}
        self.contracts: Dict[str, Contract] = {}
        self.mempool: List[Transaction] = []
        self.blocks: List[Block] = []
        self.event_log: List[Event] = []
        self.receipts: Dict[int, Receipt] = {}
        self.burnt_wei = 0
        #: Replica mode (parallel full-stack runs): writes are queued
        #: to an outbox instead of mutating state; the globally ordered
        #: op stream is applied identically on every replica at each
        #: barrier (see :meth:`enter_replica_mode`).
        self._replica = False
        self._key_source: Optional[
            Callable[[], Tuple[float, str, int]]
        ] = None
        self._outbox: List[ReplicaOp] = []
        self._next_block_time = block_interval

    # -- accounts ------------------------------------------------------------

    def create_account(self, address: str, balance: int = 0) -> Account:
        if address in self.accounts:
            raise ChainError(f"account {address!r} already exists")
        account = Account(address=address, balance=balance)
        self.accounts[address] = account
        return account

    def get_account(self, address: str) -> Account:
        if address not in self.accounts:
            raise ChainError(f"unknown account {address!r}")
        return self.accounts[address]

    # -- contracts -------------------------------------------------------------

    def deploy(self, contract: Contract) -> Contract:
        if contract.address in self.contracts:
            raise ChainError(f"contract {contract.address!r} already deployed")
        self.contracts[contract.address] = contract
        return contract

    def seed_event(self, contract: str, name: str, **args: Any) -> Event:
        """Append a deploy-time log entry (genesis state, not a tx).

        State baked into a deployment before the chain runs — e.g. a
        pre-registered membership list — still has to reach peers
        through the one synchronization channel they have, the event
        log; a seed event is that announcement. Only valid before any
        transaction has been queued or mined, so seeded entries are a
        strict prefix of the log on every honest replica.
        """
        if contract not in self.contracts:
            raise ChainError(f"unknown contract {contract!r}")
        if self.blocks or self.mempool or self._replica:
            raise ChainError(
                "seed events must precede every transaction and block"
            )
        event = Event(
            name=name,
            args=dict(args),
            contract=contract,
            block_number=0,
            log_index=len(self.event_log),
        )
        self.event_log.append(event)
        return event

    # -- transaction submission ---------------------------------------------------

    @property
    def block_number(self) -> int:
        return len(self.blocks)

    def transact(
        self,
        sender: str,
        contract: str,
        method: str,
        *args: Any,
        value: int = 0,
        calldata_bytes: int = 68,
        submitted_at: float = 0.0,
    ) -> Transaction:
        """Queue a transaction; it executes at the next mined block."""
        if contract not in self.contracts:
            raise ChainError(f"unknown contract {contract!r}")
        self.get_account(sender)  # must exist
        tx = Transaction(
            sender=sender,
            contract=contract,
            method=method,
            args=args,
            value=value,
            calldata_bytes=calldata_bytes,
            submitted_at=submitted_at,
        )
        if self._replica:
            # Replica mode: the tx is not locally pending — it joins
            # the global op stream at the next barrier, with a hash
            # every replica derives identically from the order key.
            key = self._key_source()
            tx.tx_hash = _canonical_tx_hash(key[1], key[2])
            self._outbox.append(("tx", key, tx))
            return tx
        self.mempool.append(tx)
        return tx

    def call_now(
        self,
        sender: str,
        contract: str,
        method: str,
        *args: Any,
        value: int = 0,
        calldata_bytes: int = 68,
    ) -> Receipt:
        """Submit and immediately mine a single-transaction block."""
        if self._replica:
            raise ChainError(
                "call_now bypasses the barrier op stream; replicas "
                "must transact and wait for the next barrier block"
            )
        tx = self.transact(
            sender, contract, method, *args,
            value=value, calldata_bytes=calldata_bytes,
        )
        self.mine_block()
        return self.receipts[tx.tx_hash]

    # -- block production ------------------------------------------------------------

    def mine_block(self, timestamp: Optional[float] = None) -> Block:
        """Execute every pending transaction into a new block."""
        if timestamp is None:
            timestamp = self.block_number * self.block_interval
        receipts = tuple(self._execute(tx) for tx in self.mempool)
        self.mempool.clear()
        block = Block(
            number=self.block_number, timestamp=timestamp, receipts=receipts
        )
        self.blocks.append(block)
        return block

    def _execute(self, tx: Transaction) -> Receipt:
        contract = self.contracts[tx.contract]
        sender = self.get_account(tx.sender)
        meter = GasMeter(self.schedule)
        meter.charge(self.schedule.tx_base)
        meter.charge(self.schedule.calldata_cost(tx.calldata_bytes))

        ctx = TxContext(self, contract, tx.sender, tx.value, meter)
        handler: Optional[Callable] = getattr(contract, tx.method, None)
        success = True
        return_value = None
        error = None
        balance_before = sender.balance
        contract_balance_before = contract.balance
        burnt_before = self.burnt_wei
        storage_before = dict(contract.storage)
        try:
            if handler is None or tx.method.startswith("_"):
                raise ContractError(f"no such method {tx.method!r}")
            if sender.balance < tx.value:
                raise ContractError("insufficient balance for msg.value")
            sender.balance -= tx.value
            contract.balance += tx.value
            return_value = handler(ctx, *tx.args)
        except ContractError as exc:
            # Revert: restore balances and storage, keep the gas.
            success = False
            error = str(exc)
            sender.balance = balance_before
            contract.balance = contract_balance_before
            self.burnt_wei = burnt_before
            contract.storage.clear()
            contract.storage.update(storage_before)
            ctx.events.clear()
        gas_used = meter.finalize()
        events = []
        for event in ctx.events:
            sealed = Event(
                name=event.name,
                args=event.args,
                contract=event.contract,
                block_number=self.block_number,
                log_index=len(self.event_log),
            )
            self.event_log.append(sealed)
            events.append(sealed)
        receipt = Receipt(
            tx_hash=tx.tx_hash,
            success=success,
            gas_used=gas_used,
            block_number=self.block_number,
            return_value=return_value,
            error=error,
            events=tuple(events),
        )
        self.receipts[tx.tx_hash] = receipt
        return receipt

    # -- value transfers --------------------------------------------------------------

    def transfer_value(self, sender: str, to: str, amount: int) -> None:
        """Move ether directly between externally-owned accounts.

        Plain value sends (delegation fees, watchtower payouts) — no
        contract, no mempool latency, no gas modelled; both accounts
        must already exist. In replica mode the send is deferred into
        the barrier op stream so every replica applies it at the same
        point of the global order.
        """
        if amount < 0:
            raise ChainError("cannot transfer a negative amount")
        self.get_account(sender)
        self.get_account(to)
        if self._replica:
            key = self._key_source()
            self._outbox.append(("transfer", key, (sender, to, amount)))
            return
        self._apply_transfer(sender, to, amount)

    def _apply_transfer(self, sender: str, to: str, amount: int) -> None:
        src = self.get_account(sender)
        dst = self.get_account(to)
        if src.balance < amount:
            raise ChainError(
                f"account {sender!r} holds {src.balance} wei; "
                f"cannot transfer {amount}"
            )
        src.balance -= amount
        dst.balance += amount

    # -- barrier replication ----------------------------------------------------------

    def enter_replica_mode(
        self,
        key_source: Callable[[], Tuple[float, str, int]],
        first_block_time: Optional[float] = None,
    ) -> None:
        """Switch to window-isolated replica semantics.

        From here on, :meth:`transact`/:meth:`transfer_value` queue
        partition-invariant ops to :meth:`drain_outbox` instead of
        mutating local state, and blocks are produced inside
        :meth:`replica_apply` on the fixed ``block_interval`` grid —
        every replica fed the same globally sorted op stream ends up
        bit-identical (state, receipts, event log, tx hashes).

        ``key_source`` yields ``(time, origin, seq)`` order keys — the
        parallel kernel's ``consume_order_key``. ``first_block_time``
        defaults to ``block_interval``, matching the first firing of
        the legacy periodic miner.
        """
        if self._replica:
            raise ChainError("already in replica mode")
        if self.mempool:
            raise ChainError(
                "cannot enter replica mode with transactions pending; "
                "mine the build-phase mempool first"
            )
        self._replica = True
        self._key_source = key_source
        self._outbox = []
        self._next_block_time = (
            self.block_interval
            if first_block_time is None
            else first_block_time
        )

    @property
    def is_replica(self) -> bool:
        return self._replica

    def drain_outbox(self) -> List[ReplicaOp]:
        """Ops queued locally since the last barrier (cleared)."""
        ops, self._outbox = self._outbox, []
        return ops

    @staticmethod
    def order_ops(ops: List[ReplicaOp]) -> List[ReplicaOp]:
        """The canonical global order: sort by ``(time, origin, seq)``."""
        return sorted(ops, key=lambda op: op[1])

    def replica_apply(self, ops: List[ReplicaOp], t_end: float) -> None:
        """Apply one barrier's globally ordered ops up to ``t_end``.

        Mining is interleaved on the block grid: a block with
        timestamp ``b`` seals strictly before any op with
        ``time >= b`` applies, so a tx submitted exactly at a block
        time lands in the *next* block — the same rule at every shard
        and worker count. Trailing blocks due by ``t_end`` (the window
        boundary) are mined last, which makes them visible to every
        event of the next window.
        """
        if not self._replica:
            raise ChainError("replica_apply requires replica mode")
        for kind, key, payload in ops:
            while self._next_block_time <= key[0]:
                self.mine_block(timestamp=self._next_block_time)
                self._next_block_time += self.block_interval
            if kind == "tx":
                self.mempool.append(payload)
            elif kind == "transfer":
                self._apply_transfer(*payload)
            else:
                raise ChainError(f"unknown replica op kind {kind!r}")
        while self._next_block_time <= t_end:
            self.mine_block(timestamp=self._next_block_time)
            self._next_block_time += self.block_interval

    # -- log access -----------------------------------------------------------------

    #: Shared zero-allocation result for the (overwhelmingly common)
    #: caught-up poll.
    _NO_EVENTS: Tuple[Event, ...] = ()

    def events_since(self, log_index: int) -> Tuple[Event, ...]:
        """Events with ``log_index >= log_index`` (peer sync polling).

        Returns an immutable view; the hot caught-up case (peers, the
        adversary engine and watchtowers all poll every few simulated
        seconds, events arrive only when a block seals) costs no
        allocation at all.
        """
        log = self.event_log
        if log_index >= len(log):
            return self._NO_EVENTS
        return tuple(log[log_index:])
