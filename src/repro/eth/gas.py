"""Ethereum gas schedule (post-Berlin constants).

The paper's headline cost claim (Section III) is that keeping the
membership *tree off-chain* and only an ordered list of public keys
on-chain makes registration and deletion **constant** in gas, versus
**logarithmic** (tree-depth many storage writes) for the original RLN
design — "optimizing gas consumption by an order of magnitude". To
reproduce that claim with the same mechanism as mainnet, contract
execution in :mod:`repro.eth` is metered with the real constants from
EIP-2929 (cold/warm access) and EIP-2200/EIP-3529 (SSTORE pricing and
refund caps).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GasSchedule:
    """Cost constants, in gas units."""

    tx_base: int = 21_000
    calldata_zero_byte: int = 4
    calldata_nonzero_byte: int = 16
    sstore_set: int = 20_000  # zero -> non-zero
    sstore_update: int = 2_900  # non-zero -> non-zero (cold slot, EIP-2929)
    sstore_clear_refund: int = 4_800  # EIP-3529 refund for non-zero -> zero
    sload_cold: int = 2_100
    sload_warm: int = 100
    log_base: int = 375
    log_topic: int = 375
    log_data_byte: int = 8
    keccak_base: int = 30
    keccak_word: int = 6
    #: One zk-friendly hash (Poseidon/MiMC) evaluated *in the EVM*.
    #: keccak is 3 orders of magnitude cheaper, but the membership tree
    #: must use the circuit hash or membership proofs would not verify;
    #: ~50k gas matches deployed Semaphore/Tornado-style Poseidon
    #: libraries and is the dominant cost of on-chain tree updates.
    poseidon_hash: int = 50_000
    call_value_transfer: int = 9_000
    #: Max fraction of used gas refundable (EIP-3529: 1/5).
    max_refund_quotient: int = 5

    def calldata_cost(self, data_bytes: int, zero_fraction: float = 0.3) -> int:
        """Approximate calldata gas for ``data_bytes`` bytes of payload."""
        zeros = int(data_bytes * zero_fraction)
        nonzeros = data_bytes - zeros
        return zeros * self.calldata_zero_byte + nonzeros * self.calldata_nonzero_byte

    def keccak_cost(self, data_bytes: int) -> int:
        """Gas for one keccak256 over ``data_bytes`` bytes."""
        words = (data_bytes + 31) // 32
        return self.keccak_base + words * self.keccak_word

    def log_cost(self, topics: int, data_bytes: int) -> int:
        return (
            self.log_base
            + topics * self.log_topic
            + data_bytes * self.log_data_byte
        )


#: The schedule used unless a test overrides it.
DEFAULT_GAS_SCHEDULE = GasSchedule()


class GasMeter:
    """Accumulates gas and refunds for one transaction."""

    def __init__(self, schedule: GasSchedule = DEFAULT_GAS_SCHEDULE) -> None:
        self.schedule = schedule
        self.used = 0
        self.refund = 0
        self._warm_slots: set = set()

    def charge(self, amount: int) -> None:
        self.used += amount

    def charge_sload(self, slot) -> None:
        if slot in self._warm_slots:
            self.charge(self.schedule.sload_warm)
        else:
            self._warm_slots.add(slot)
            self.charge(self.schedule.sload_cold)

    def charge_sstore(self, slot, was_zero: bool, now_zero: bool) -> None:
        if was_zero and not now_zero:
            self.charge(self.schedule.sstore_set)
        else:
            self.charge(self.schedule.sstore_update)
            if not was_zero and now_zero:
                self.refund += self.schedule.sstore_clear_refund
        self._warm_slots.add(slot)

    def finalize(self) -> int:
        """Total gas after capping refunds (EIP-3529)."""
        capped_refund = min(
            self.refund, self.used // self.schedule.max_refund_quotient
        )
        return self.used - capped_refund
