"""The two membership-contract designs compared in the paper.

* :class:`MembershipRegistry` — the **paper's** design (Section III): the
  contract is "merely a registry keeping an ordered list of users public
  keys"; the Merkle tree lives off-chain with the peers. Registration
  and deletion touch a *constant* number of storage slots.

* :class:`OnChainTreeContract` — the **original RLN** design the paper
  optimizes away: the whole membership tree is contract storage, so each
  registration/deletion rewrites one node per tree level — a
  *logarithmic* number of cold SSTOREs. Benchmarks E5 regenerate the
  "order of magnitude" gas comparison from these two classes.

Both enforce staking (Sybil mitigation) and implement slashing: anyone
who submits a member's reconstructed secret key removes the member,
burns ``burn_fraction`` of the stake and receives the rest (the paper's
cryptographically guaranteed economic incentive).
"""

from __future__ import annotations

from ..constants import (
    DEFAULT_MEMBERSHIP_STAKE_WEI,
    DEFAULT_MERKLE_DEPTH,
    DEFAULT_SLASH_BURN_FRACTION,
)
from ..crypto.field import Fr
from ..crypto.hashing import hash1, hash2_int
from ..crypto.merkle import zero_hashes_int
from ..errors import ContractError
from .chain import Contract, TxContext


class MembershipContractBase(Contract):
    """Staking, slashing economics and views shared by both designs."""

    def __init__(
        self,
        address: str,
        stake_wei: int = DEFAULT_MEMBERSHIP_STAKE_WEI,
        burn_fraction: float = DEFAULT_SLASH_BURN_FRACTION,
    ) -> None:
        super().__init__(address)
        self.stake_wei = stake_wei
        self.burn_fraction = burn_fraction

    def _check_stake(self, ctx: TxContext) -> None:
        ctx.require(
            ctx.value >= self.stake_wei,
            f"stake of {self.stake_wei} wei required, got {ctx.value}",
        )

    def _payout_slash(self, ctx: TxContext) -> None:
        """Burn part of the slashed stake, reward the reporter with the rest."""
        burn = int(self.stake_wei * self.burn_fraction)
        reward = self.stake_wei - burn
        ctx.burn(burn)
        ctx.transfer(ctx.sender, reward)

    # -- gas-free views (off-chain reads) -------------------------------------

    def member_count(self) -> int:
        return self.storage.get("count", 0)


class MembershipRegistry(MembershipContractBase):
    """Paper design: flat ordered list of public keys; tree off-chain.

    Storage layout::

        "count"              -> number of slots ever assigned
        ("member", i)        -> pk at slot i (0 when slashed)
        ("index_of", pk)     -> i + 1 (0 means not a member)

    ``register`` and ``slash`` each touch a constant number of slots,
    independent of the group size — the paper's constant-complexity
    claim.

    A deployment may additionally carry a *genesis member list*
    (:meth:`genesis_register`): pre-registered public keys baked into
    the deployment state, held as ordinary Python state rather than
    per-key storage slots so that a million-identity genesis does not
    put a million entries into the storage dict every transaction
    snapshots for revert. Genesis members occupy leaf slots
    ``0 .. n-1``; transactional registrations continue after them.
    """

    def __init__(
        self,
        address: str,
        stake_wei: int = DEFAULT_MEMBERSHIP_STAKE_WEI,
        burn_fraction: float = DEFAULT_SLASH_BURN_FRACTION,
    ) -> None:
        super().__init__(address, stake_wei, burn_fraction)
        #: Deploy-time member list (immutable; slashes are recorded in
        #: ("genesis_removed", index) storage slots instead).
        self._genesis_pks: tuple = ()
        self._genesis_index: dict = {}

    def genesis_register(self, pks) -> int:
        """Bake ``pks`` into the deployment as pre-registered members.

        Deploy-time only (before any transaction): the constructor-
        style equivalent of ``n`` register calls, with the stakes
        funded into the contract as genesis supply. The caller must
        announce the batch to peers with one
        ``chain.seed_event(address, "MembersRegistered", pks=...)``.
        Returns the number of members registered.
        """
        if self.storage.get("count", 0) or self._genesis_pks:
            raise ContractError(
                "genesis registration requires an empty registry"
            )
        pks = tuple(int(pk) for pk in pks)
        index_of = {}
        for index, pk in enumerate(pks):
            if pk == 0:
                raise ContractError("pk must be non-zero")
            if pk in index_of:
                raise ContractError(f"duplicate genesis pk at slot {index}")
            index_of[pk] = index
        self._genesis_pks = pks
        self._genesis_index = index_of
        if pks:
            self.storage["count"] = len(pks)
        self.balance += self.stake_wei * len(pks)
        return len(pks)

    def _genesis_slot(self, pk: int):
        """Live genesis slot of ``pk``, or None (absent or slashed)."""
        index = self._genesis_index.get(pk)
        if index is None or self.storage.get(("genesis_removed", index), 0):
            return None
        return index

    def register(self, ctx: TxContext, pk: int) -> int:
        """Join the group by staking; returns the assigned leaf index."""
        self._check_stake(ctx)
        ctx.require(pk != 0, "pk must be non-zero")
        existing = ctx.sload(("index_of", pk))
        ctx.require(
            existing == 0 and self._genesis_slot(pk) is None,
            "pk already registered",
        )
        index = ctx.sload("count")
        ctx.sstore(("member", index), pk)
        ctx.sstore(("index_of", pk), index + 1)
        ctx.sstore("count", index + 1)
        ctx.emit("MemberRegistered", pk=pk, index=index)
        return index

    def slash(self, ctx: TxContext, sk: int) -> int:
        """Remove the member whose secret key is ``sk``; pay the reporter.

        The contract recomputes ``pk = H(sk)`` (one hash) and needs no
        tree update — deletion is the same constant-slot pattern as
        registration. Genesis members are removed by tombstoning their
        slot (their pk list is immutable), still constant-cost.
        """
        ctx.poseidon()  # pk = H(sk) uses the circuit hash
        pk = int(hash1(Fr(sk)))
        stored = ctx.sload(("index_of", pk))
        if stored != 0:
            index = stored - 1
            ctx.sstore(("member", index), 0)
            ctx.sstore(("index_of", pk), 0)
        else:
            index = self._genesis_slot(pk)
            ctx.require(index is not None, "unknown member")
            ctx.sstore(("genesis_removed", index), 1)
        self._payout_slash(ctx)
        ctx.emit("MemberRemoved", pk=pk, index=index)
        return index

    def member_at(self, index: int) -> int:
        """Gas-free view: pk at slot ``index`` (0 when slashed/absent)."""
        if index < len(self._genesis_pks):
            if self.storage.get(("genesis_removed", index), 0):
                return 0
            return self._genesis_pks[index]
        return self.storage.get(("member", index), 0)

    def is_member(self, pk: int) -> bool:
        """Gas-free view used by off-chain tooling."""
        if self.storage.get(("index_of", pk), 0) != 0:
            return True
        return self._genesis_slot(pk) is not None


class OnChainTreeContract(MembershipContractBase):
    """Original RLN design: the Merkle tree is contract storage.

    Every insertion/deletion recomputes the root path: ``depth`` hashes,
    ``depth`` sibling SLOADs and ``depth + 1`` SSTOREs — logarithmic in
    the group capacity, which is exactly the cost the paper's registry
    design eliminates.

    Storage layout::

        "count"          -> number of slots ever assigned
        ("node", h, i)   -> tree node at height h, index i (0 = zero hash)
        ("index_of", pk) -> i + 1
        "root"           -> current tree root
    """

    def __init__(
        self,
        address: str,
        depth: int = DEFAULT_MERKLE_DEPTH,
        stake_wei: int = DEFAULT_MEMBERSHIP_STAKE_WEI,
        burn_fraction: float = DEFAULT_SLASH_BURN_FRACTION,
    ) -> None:
        super().__init__(address, stake_wei, burn_fraction)
        self.depth = depth
        #: Precomputed in the contract bytecode — free to read.
        self._zeros = list(zero_hashes_int(depth))

    def register(self, ctx: TxContext, pk: int) -> int:
        self._check_stake(ctx)
        ctx.require(pk != 0, "pk must be non-zero")
        existing = ctx.sload(("index_of", pk))
        ctx.require(existing == 0, "pk already registered")
        index = ctx.sload("count")
        ctx.require(index < (1 << self.depth), "tree is full")
        self._update_leaf(ctx, index, pk)
        ctx.sstore(("index_of", pk), index + 1)
        ctx.sstore("count", index + 1)
        ctx.emit("MemberRegistered", pk=pk, index=index)
        return index

    def slash(self, ctx: TxContext, sk: int) -> int:
        ctx.poseidon()
        pk = int(hash1(Fr(sk)))
        stored = ctx.sload(("index_of", pk))
        ctx.require(stored != 0, "unknown member")
        index = stored - 1
        self._update_leaf(ctx, index, 0)  # logarithmic again
        ctx.sstore(("index_of", pk), 0)
        self._payout_slash(ctx)
        ctx.emit("MemberRemoved", pk=pk, index=index)
        return index

    def _update_leaf(self, ctx: TxContext, index: int, value: int) -> None:
        """Write a leaf and rehash the path to the root — O(depth) gas."""
        ctx.sstore(("node", 0, index), value)
        node = value
        node_index = index
        for height in range(self.depth):
            sibling_index = node_index ^ 1
            sibling = ctx.sload(("node", height, sibling_index))
            if sibling == 0:
                sibling = self._zeros[height]
            ctx.poseidon()
            if node_index & 1:
                node = hash2_int(sibling, node)
            else:
                node = hash2_int(node, sibling)
            node_index //= 2
            ctx.sstore(("node", height + 1, node_index), node)
        ctx.sstore("root", node)

    def root(self) -> int:
        """Gas-free view of the stored root (empty-tree root if unset)."""
        return self.storage.get("root", self._zeros[self.depth])

    def is_member(self, pk: int) -> bool:
        return self.storage.get(("index_of", pk), 0) != 0
