"""The two membership-contract designs compared in the paper.

* :class:`MembershipRegistry` — the **paper's** design (Section III): the
  contract is "merely a registry keeping an ordered list of users public
  keys"; the Merkle tree lives off-chain with the peers. Registration
  and deletion touch a *constant* number of storage slots.

* :class:`OnChainTreeContract` — the **original RLN** design the paper
  optimizes away: the whole membership tree is contract storage, so each
  registration/deletion rewrites one node per tree level — a
  *logarithmic* number of cold SSTOREs. Benchmarks E5 regenerate the
  "order of magnitude" gas comparison from these two classes.

Both enforce staking (Sybil mitigation) and implement slashing: anyone
who submits a member's reconstructed secret key removes the member,
burns ``burn_fraction`` of the stake and receives the rest (the paper's
cryptographically guaranteed economic incentive).
"""

from __future__ import annotations

from ..constants import (
    DEFAULT_MEMBERSHIP_STAKE_WEI,
    DEFAULT_MERKLE_DEPTH,
    DEFAULT_SLASH_BURN_FRACTION,
)
from ..crypto.field import Fr
from ..crypto.hashing import hash1, hash2_int
from ..crypto.merkle import zero_hashes_int
from .chain import Contract, TxContext


class MembershipContractBase(Contract):
    """Staking, slashing economics and views shared by both designs."""

    def __init__(
        self,
        address: str,
        stake_wei: int = DEFAULT_MEMBERSHIP_STAKE_WEI,
        burn_fraction: float = DEFAULT_SLASH_BURN_FRACTION,
    ) -> None:
        super().__init__(address)
        self.stake_wei = stake_wei
        self.burn_fraction = burn_fraction

    def _check_stake(self, ctx: TxContext) -> None:
        ctx.require(
            ctx.value >= self.stake_wei,
            f"stake of {self.stake_wei} wei required, got {ctx.value}",
        )

    def _payout_slash(self, ctx: TxContext) -> None:
        """Burn part of the slashed stake, reward the reporter with the rest."""
        burn = int(self.stake_wei * self.burn_fraction)
        reward = self.stake_wei - burn
        ctx.burn(burn)
        ctx.transfer(ctx.sender, reward)

    # -- gas-free views (off-chain reads) -------------------------------------

    def member_count(self) -> int:
        return self.storage.get("count", 0)


class MembershipRegistry(MembershipContractBase):
    """Paper design: flat ordered list of public keys; tree off-chain.

    Storage layout::

        "count"              -> number of slots ever assigned
        ("member", i)        -> pk at slot i (0 when slashed)
        ("index_of", pk)     -> i + 1 (0 means not a member)

    ``register`` and ``slash`` each touch a constant number of slots,
    independent of the group size — the paper's constant-complexity
    claim.
    """

    def register(self, ctx: TxContext, pk: int) -> int:
        """Join the group by staking; returns the assigned leaf index."""
        self._check_stake(ctx)
        ctx.require(pk != 0, "pk must be non-zero")
        existing = ctx.sload(("index_of", pk))
        ctx.require(existing == 0, "pk already registered")
        index = ctx.sload("count")
        ctx.sstore(("member", index), pk)
        ctx.sstore(("index_of", pk), index + 1)
        ctx.sstore("count", index + 1)
        ctx.emit("MemberRegistered", pk=pk, index=index)
        return index

    def slash(self, ctx: TxContext, sk: int) -> int:
        """Remove the member whose secret key is ``sk``; pay the reporter.

        The contract recomputes ``pk = H(sk)`` (one hash) and needs no
        tree update — deletion is the same constant-slot pattern as
        registration.
        """
        ctx.poseidon()  # pk = H(sk) uses the circuit hash
        pk = int(hash1(Fr(sk)))
        stored = ctx.sload(("index_of", pk))
        ctx.require(stored != 0, "unknown member")
        index = stored - 1
        ctx.sstore(("member", index), 0)
        ctx.sstore(("index_of", pk), 0)
        self._payout_slash(ctx)
        ctx.emit("MemberRemoved", pk=pk, index=index)
        return index

    def is_member(self, pk: int) -> bool:
        """Gas-free view used by off-chain tooling."""
        return self.storage.get(("index_of", pk), 0) != 0


class OnChainTreeContract(MembershipContractBase):
    """Original RLN design: the Merkle tree is contract storage.

    Every insertion/deletion recomputes the root path: ``depth`` hashes,
    ``depth`` sibling SLOADs and ``depth + 1`` SSTOREs — logarithmic in
    the group capacity, which is exactly the cost the paper's registry
    design eliminates.

    Storage layout::

        "count"          -> number of slots ever assigned
        ("node", h, i)   -> tree node at height h, index i (0 = zero hash)
        ("index_of", pk) -> i + 1
        "root"           -> current tree root
    """

    def __init__(
        self,
        address: str,
        depth: int = DEFAULT_MERKLE_DEPTH,
        stake_wei: int = DEFAULT_MEMBERSHIP_STAKE_WEI,
        burn_fraction: float = DEFAULT_SLASH_BURN_FRACTION,
    ) -> None:
        super().__init__(address, stake_wei, burn_fraction)
        self.depth = depth
        #: Precomputed in the contract bytecode — free to read.
        self._zeros = list(zero_hashes_int(depth))

    def register(self, ctx: TxContext, pk: int) -> int:
        self._check_stake(ctx)
        ctx.require(pk != 0, "pk must be non-zero")
        existing = ctx.sload(("index_of", pk))
        ctx.require(existing == 0, "pk already registered")
        index = ctx.sload("count")
        ctx.require(index < (1 << self.depth), "tree is full")
        self._update_leaf(ctx, index, pk)
        ctx.sstore(("index_of", pk), index + 1)
        ctx.sstore("count", index + 1)
        ctx.emit("MemberRegistered", pk=pk, index=index)
        return index

    def slash(self, ctx: TxContext, sk: int) -> int:
        ctx.poseidon()
        pk = int(hash1(Fr(sk)))
        stored = ctx.sload(("index_of", pk))
        ctx.require(stored != 0, "unknown member")
        index = stored - 1
        self._update_leaf(ctx, index, 0)  # logarithmic again
        ctx.sstore(("index_of", pk), 0)
        self._payout_slash(ctx)
        ctx.emit("MemberRemoved", pk=pk, index=index)
        return index

    def _update_leaf(self, ctx: TxContext, index: int, value: int) -> None:
        """Write a leaf and rehash the path to the root — O(depth) gas."""
        ctx.sstore(("node", 0, index), value)
        node = value
        node_index = index
        for height in range(self.depth):
            sibling_index = node_index ^ 1
            sibling = ctx.sload(("node", height, sibling_index))
            if sibling == 0:
                sibling = self._zeros[height]
            ctx.poseidon()
            if node_index & 1:
                node = hash2_int(sibling, node)
            else:
                node = hash2_int(node, sibling)
            node_index //= 2
            ctx.sstore(("node", height + 1, node_index), node)
        ctx.sstore("root", node)

    def root(self) -> int:
        """Gas-free view of the stored root (empty-tree root if unset)."""
        return self.storage.get("root", self._zeros[self.depth])

    def is_member(self, pk: int) -> bool:
        return self.storage.get(("index_of", pk), 0) != 0
