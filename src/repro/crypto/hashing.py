"""Hash backends and domain-separated helpers.

Two interchangeable field-hash backends:

* ``"poseidon"`` — the genuine Poseidon permutation
  (:mod:`repro.crypto.poseidon`); circuit-faithful but ~100x slower in
  pure Python.
* ``"blake2b"`` — BLAKE2b reduced into the field; used by default in
  large network simulations where thousands of Merkle inserts and signal
  verifications happen per run.

Both backends expose the same arity-1/arity-2 API, so every layer above
(Merkle trees, nullifiers, Shamir coefficient derivation) is
backend-independent. Tests assert that the protocol state machine
produces identical *decisions* under either backend.

Int-native fast path
--------------------

The hot loops (Merkle path rehashing, signal verification) spend most of
their time hashing, and most of *that* used to be :class:`Fr` object
churn: wrap, re-reduce, ``to_bytes``, unwrap. Each backend therefore
also registers an int-native pair — :func:`hash1_int` / :func:`hash2_int`
take and return canonical integers in ``[0, MODULUS)`` with no ``Fr``
allocation anywhere inside. The ``Fr``-typed :func:`hash1` / :func:`hash2`
are thin wrappers over the int path and bit-identical to the historical
implementations.

Every call through the int entry points bumps a process-wide counter
(:func:`hash_call_count`), which benchmarks use to report network-wide
hash work.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Sequence, Tuple

from ..errors import FieldError
from .field import Fr
from .poseidon import poseidon_hash, poseidon_hash1_int, poseidon_hash2_int

#: Signature shared by all field-hash backends.
FieldHash = Callable[[Sequence[Fr]], Fr]

_MODULUS = Fr.MODULUS


def blake2b_field_hash(inputs: Sequence[Fr]) -> Fr:
    """Hash 1 or 2 field elements via BLAKE2b with arity domain separation."""
    n = len(inputs)
    if n not in (1, 2):
        raise FieldError(f"blake2b_field_hash takes 1 or 2 inputs, got {n}")
    hasher = hashlib.blake2b(digest_size=32, person=b"repro-fr" + bytes([n]))
    for element in inputs:
        hasher.update(Fr(element).to_bytes())
    return Fr.reduce_bytes(hasher.digest())


def blake2b_hash1_int(x: int) -> int:
    """Int-native arity-1 BLAKE2b field hash (same digest as the Fr API)."""
    hasher = hashlib.blake2b(digest_size=32, person=b"repro-fr\x01")
    hasher.update(x.to_bytes(32, "big"))
    return int.from_bytes(hasher.digest(), "big") % _MODULUS


def blake2b_hash2_int(x: int, y: int) -> int:
    """Int-native arity-2 BLAKE2b field hash (same digest as the Fr API)."""
    hasher = hashlib.blake2b(digest_size=32, person=b"repro-fr\x02")
    hasher.update(x.to_bytes(32, "big"))
    hasher.update(y.to_bytes(32, "big"))
    return int.from_bytes(hasher.digest(), "big") % _MODULUS


_BACKENDS: Dict[str, FieldHash] = {
    "poseidon": poseidon_hash,
    "blake2b": blake2b_field_hash,
}

#: backend name -> (arity-1, arity-2) int-native implementations.
_INT_BACKENDS: Dict[str, Tuple[Callable[[int], int], Callable[[int, int], int]]] = {
    "poseidon": (poseidon_hash1_int, poseidon_hash2_int),
    "blake2b": (blake2b_hash1_int, blake2b_hash2_int),
}

_active_backend_name = "blake2b"
_active_hash1_int = blake2b_hash1_int
_active_hash2_int = blake2b_hash2_int

#: Process-wide count of field-hash invocations (benchmark probe).
_hash_calls = 0


def available_backends() -> tuple:
    """Names of the registered field-hash backends."""
    return tuple(sorted(_BACKENDS))


def set_hash_backend(name: str) -> None:
    """Select the process-wide field-hash backend.

    Changing backends invalidates previously computed commitments and
    tree roots, so switch only at the start of a simulation. Caches
    keyed by the backend name (the zero-hash table, the external
    nullifier memo) need no flush — their entries are per-backend.
    """
    global _active_backend_name, _active_hash1_int, _active_hash2_int
    if name not in _BACKENDS or name not in _INT_BACKENDS:
        raise FieldError(
            f"unknown hash backend {name!r} (backends register in both "
            f"_BACKENDS and _INT_BACKENDS); available: {available_backends()}"
        )
    _active_backend_name = name
    _active_hash1_int, _active_hash2_int = _INT_BACKENDS[name]


def get_hash_backend() -> str:
    """Name of the currently active backend."""
    return _active_backend_name


def hash_call_count() -> int:
    """Total field-hash invocations in this process (monotonic).

    Benchmarks diff this around a workload to report how much hashing
    the network really performed — the shared membership store's
    headline number is measured with it.
    """
    return _hash_calls


def hash1_int(x: int) -> int:
    """Int-native arity-1 field hash under the active backend.

    ``x`` must be a canonical integer in ``[0, MODULUS)``.
    """
    global _hash_calls
    _hash_calls += 1
    return _active_hash1_int(x)


def hash2_int(x: int, y: int) -> int:
    """Int-native arity-2 field hash under the active backend.

    Inputs must be canonical integers in ``[0, MODULUS)``.
    """
    global _hash_calls
    _hash_calls += 1
    return _active_hash2_int(x, y)


def hash1(x: Fr) -> Fr:
    """Domain-separated arity-1 field hash under the active backend."""
    return Fr(hash1_int(Fr(x)._value))


def hash2(x: Fr, y: Fr) -> Fr:
    """Domain-separated arity-2 field hash under the active backend."""
    return Fr(hash2_int(Fr(x)._value, Fr(y)._value))


def hash_bytes_to_field(data: bytes, domain: str = "msg") -> Fr:
    """Map an arbitrary byte string (e.g. a message payload) into Fr.

    RLN evaluates the Shamir line at ``x = H(m)``; this is that ``H``.
    """
    hasher = hashlib.blake2b(digest_size=32)
    hasher.update(domain.encode())
    hasher.update(b"\x00")
    hasher.update(data)
    return Fr.reduce_bytes(hasher.digest())
