"""Hash backends and domain-separated helpers.

Two interchangeable field-hash backends:

* ``"poseidon"`` — the genuine Poseidon permutation
  (:mod:`repro.crypto.poseidon`); circuit-faithful but ~100x slower in
  pure Python.
* ``"blake2b"`` — BLAKE2b reduced into the field; used by default in
  large network simulations where thousands of Merkle inserts and signal
  verifications happen per run.

Both backends expose the same arity-1/arity-2 API, so every layer above
(Merkle trees, nullifiers, Shamir coefficient derivation) is
backend-independent. Tests assert that the protocol state machine
produces identical *decisions* under either backend.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Sequence

from ..errors import FieldError
from .field import Fr
from .poseidon import poseidon_hash

#: Signature shared by all field-hash backends.
FieldHash = Callable[[Sequence[Fr]], Fr]


def blake2b_field_hash(inputs: Sequence[Fr]) -> Fr:
    """Hash 1 or 2 field elements via BLAKE2b with arity domain separation."""
    n = len(inputs)
    if n not in (1, 2):
        raise FieldError(f"blake2b_field_hash takes 1 or 2 inputs, got {n}")
    hasher = hashlib.blake2b(digest_size=32, person=b"repro-fr" + bytes([n]))
    for element in inputs:
        hasher.update(Fr(element).to_bytes())
    return Fr.reduce_bytes(hasher.digest())


_BACKENDS: Dict[str, FieldHash] = {
    "poseidon": poseidon_hash,
    "blake2b": blake2b_field_hash,
}

_active_backend_name = "blake2b"


def available_backends() -> tuple:
    """Names of the registered field-hash backends."""
    return tuple(sorted(_BACKENDS))


def set_hash_backend(name: str) -> None:
    """Select the process-wide field-hash backend.

    Changing backends invalidates previously computed commitments and
    tree roots, so switch only at the start of a simulation.
    """
    global _active_backend_name
    if name not in _BACKENDS:
        raise FieldError(
            f"unknown hash backend {name!r}; available: {available_backends()}"
        )
    _active_backend_name = name


def get_hash_backend() -> str:
    """Name of the currently active backend."""
    return _active_backend_name


def hash1(x: Fr) -> Fr:
    """Domain-separated arity-1 field hash under the active backend."""
    return _BACKENDS[_active_backend_name]([Fr(x)])


def hash2(x: Fr, y: Fr) -> Fr:
    """Domain-separated arity-2 field hash under the active backend."""
    return _BACKENDS[_active_backend_name]([Fr(x), Fr(y)])


def hash_bytes_to_field(data: bytes, domain: str = "msg") -> Fr:
    """Map an arbitrary byte string (e.g. a message payload) into Fr.

    RLN evaluates the Shamir line at ``x = H(m)``; this is that ``H``.
    """
    hasher = hashlib.blake2b(digest_size=32)
    hasher.update(domain.encode())
    hasher.update(b"\x00")
    hasher.update(data)
    return Fr.reduce_bytes(hasher.digest())
