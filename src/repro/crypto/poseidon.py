"""Poseidon hash over the BN254 scalar field.

The RLN construction hashes field elements at every layer: identity
commitments ``pk = H(sk)``, internal nullifiers ``phi = H(H(sk, epoch))``,
Shamir coefficients ``a1 = H(sk, epoch)`` and every Merkle-tree node.
The reference implementation (circomlib / kilic-rln) uses Poseidon, a
sponge built from a partial-SBox permutation that is cheap inside
arithmetic circuits.

This module implements the genuine Poseidon permutation:

* state width ``t`` in {2, 3} (1- and 2-input compression),
* S-box ``x -> x^5`` (BN254's scalar field has gcd(5, p-1) = 1),
* ``R_F = 8`` full rounds and the circomlib partial-round counts
  (``R_P = 56`` for t=2, ``R_P = 57`` for t=3),
* round constants and an invertible MDS matrix derived deterministically
  from SHA-256 in counter mode (a simplification of the Grain LFSR used
  by the reference parameter generator — the security argument only needs
  "nothing up my sleeve" constants and an MDS matrix, both of which this
  construction provides).

Because parameter *values* differ from circomlib's, digests differ from
the reference implementation's, but every protocol-relevant property
(determinism, field-valued output, fixed arity, collision resistance,
circuit-friendliness and constraint counts) is preserved. DESIGN.md
records this substitution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

from ..errors import FieldError
from .field import Fr

#: Number of full rounds (split half before, half after the partial rounds).
FULL_ROUNDS = 8

#: Partial-round counts per state width, matching circomlib's schedule.
PARTIAL_ROUNDS = {2: 56, 3: 57, 4: 56, 5: 60}

_SBOX_EXPONENT = 5


def _derive_field_elements(tag: str, count: int) -> List[Fr]:
    """Derive ``count`` nothing-up-my-sleeve field elements from ``tag``.

    SHA-256 in counter mode; 256-bit outputs are reduced mod p. The bias
    from reduction is ~2^-128 per element, which is irrelevant here.
    """
    elements: List[Fr] = []
    counter = 0
    while len(elements) < count:
        digest = hashlib.sha256(f"{tag}|{counter}".encode()).digest()
        elements.append(Fr.reduce_bytes(digest))
        counter += 1
    return elements


def _derive_mds_matrix(t: int) -> Tuple[Tuple[Fr, ...], ...]:
    """Build a ``t x t`` Cauchy matrix ``M[i][j] = 1 / (x_i + y_j)``.

    Cauchy matrices over a prime field are MDS whenever the ``x_i`` are
    pairwise distinct, the ``y_j`` are pairwise distinct and
    ``x_i + y_j != 0`` for all pairs; the derivation retries until those
    conditions hold.
    """
    attempt = 0
    while True:
        seed = f"poseidon-mds-t{t}-attempt{attempt}"
        points = _derive_field_elements(seed, 2 * t)
        xs, ys = points[:t], points[t:]
        distinct = len({int(v) for v in points}) == 2 * t
        no_zero_sum = all(not (x + y).is_zero() for x in xs for y in ys)
        if distinct and no_zero_sum:
            return tuple(
                tuple((x + y).inverse() for y in ys) for x in xs
            )
        attempt += 1


@dataclass(frozen=True)
class PoseidonParameters:
    """Round constants and MDS matrix for one state width."""

    t: int
    full_rounds: int
    partial_rounds: int
    round_constants: Tuple[Fr, ...]
    mds: Tuple[Tuple[Fr, ...], ...]

    @property
    def total_rounds(self) -> int:
        return self.full_rounds + self.partial_rounds


@lru_cache(maxsize=None)
def poseidon_parameters(t: int) -> PoseidonParameters:
    """Deterministic parameters for state width ``t``."""
    if t not in PARTIAL_ROUNDS:
        raise FieldError(f"unsupported Poseidon state width t={t}")
    partial = PARTIAL_ROUNDS[t]
    total = FULL_ROUNDS + partial
    constants = tuple(_derive_field_elements(f"poseidon-rc-t{t}", total * t))
    mds = _derive_mds_matrix(t)
    return PoseidonParameters(
        t=t,
        full_rounds=FULL_ROUNDS,
        partial_rounds=partial,
        round_constants=constants,
        mds=mds,
    )


@lru_cache(maxsize=None)
def poseidon_parameters_int(
    t: int,
) -> Tuple[Tuple[int, ...], Tuple[Tuple[int, ...], ...]]:
    """Integer-form ``(round_constants, mds)`` for state width ``t``.

    The permutation works on plain integers; re-deriving these from the
    :class:`Fr`-typed :class:`PoseidonParameters` on every call used to
    dominate the hash cost, so they are cached once per width here.
    """
    params = poseidon_parameters(t)
    constants = tuple(int(c) for c in params.round_constants)
    mds = tuple(tuple(int(c) for c in row) for row in params.mds)
    return constants, mds


def _sbox(x: Fr) -> Fr:
    return x ** _SBOX_EXPONENT


def poseidon_permutation_int(state: Sequence[int]) -> List[int]:
    """Int-native Poseidon permutation (length of ``state`` = t).

    Inputs must already be reduced modulo the field prime; outputs are
    canonical integers. This is the hot path — no :class:`Fr` objects
    are created anywhere inside.
    """
    t = len(state)
    params = poseidon_parameters(t)
    constants, mds_int = poseidon_parameters_int(t)
    modulus = Fr.MODULUS
    values = list(state)

    half_full = params.full_rounds // 2
    partial_start = half_full
    partial_end = half_full + params.partial_rounds

    for round_index in range(params.total_rounds):
        base = round_index * t
        for i in range(t):
            values[i] = (values[i] + constants[base + i]) % modulus
        if partial_start <= round_index < partial_end:
            values[0] = pow(values[0], _SBOX_EXPONENT, modulus)
        else:
            values = [pow(v, _SBOX_EXPONENT, modulus) for v in values]
        values = [
            sum(mds_int[i][j] * values[j] for j in range(t)) % modulus
            for i in range(t)
        ]
    return values


def poseidon_permutation(state: Sequence[Fr]) -> List[Fr]:
    """Apply the Poseidon permutation to ``state`` (length = t)."""
    return [
        Fr(v)
        for v in poseidon_permutation_int([int(Fr(x)) for x in state])
    ]


def poseidon_hash1_int(x: int) -> int:
    """Int-native single-input Poseidon hash."""
    return poseidon_permutation_int([1, x])[0]


def poseidon_hash2_int(x: int, y: int) -> int:
    """Int-native two-input Poseidon hash."""
    return poseidon_permutation_int([2, x, y])[0]


def poseidon_hash(inputs: Sequence[Fr]) -> Fr:
    """Hash 1 or 2 field elements with a fixed-arity Poseidon sponge.

    The capacity element is initialised with a domain tag encoding the
    arity (as circomlib does), the inputs fill the rate, and the first
    state element after one permutation is the digest.
    """
    n = len(inputs)
    if n not in (1, 2):
        raise FieldError(f"poseidon_hash takes 1 or 2 inputs, got {n}")
    state = [n, *[int(Fr(x)) for x in inputs]]
    return Fr(poseidon_permutation_int(state)[0])


def poseidon_hash1(x: Fr) -> Fr:
    """Single-input Poseidon hash, ``H(x)`` — used for pk = H(sk)."""
    return poseidon_hash([x])


def poseidon_hash2(x: Fr, y: Fr) -> Fr:
    """Two-input Poseidon hash, ``H(x, y)`` — used for tree nodes and
    the RLN nullifier/share derivations."""
    return poseidon_hash([x, y])
