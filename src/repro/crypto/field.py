"""Prime-field arithmetic over the BN254 scalar field.

Every algebraic object in the RLN construction — Poseidon digests, Merkle
nodes, identity secrets/commitments, nullifiers and Shamir shares — is an
element of the BN254 scalar field. :class:`Fr` wraps a Python integer
reduced modulo the field prime and provides the usual operator overloads,
inversion, exponentiation and a fixed 32-byte big-endian serialization.

The class is immutable and hashable so elements can be used as dict keys
(e.g. in the nullifier map).
"""

from __future__ import annotations

from typing import Iterable, Union

from ..constants import BN254_SCALAR_FIELD, KEY_SIZE_BYTES
from ..errors import FieldError, SerializationError

#: Alias for anything the constructors accept.
FrLike = Union["Fr", int]


class Fr:
    """An element of the BN254 scalar field.

    >>> Fr(3) + Fr(4)
    Fr(7)
    >>> (Fr(3) / Fr(4)) * Fr(4)
    Fr(3)
    """

    MODULUS = BN254_SCALAR_FIELD

    __slots__ = ("_value",)

    def __init__(self, value: FrLike = 0) -> None:
        if isinstance(value, Fr):
            self._value = value._value
        elif isinstance(value, int):
            self._value = value % self.MODULUS
        else:
            raise FieldError(f"cannot build Fr from {type(value).__name__}")

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls) -> "Fr":
        """The additive identity."""
        return cls(0)

    @classmethod
    def one(cls) -> "Fr":
        """The multiplicative identity."""
        return cls(1)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Fr":
        """Decode a 32-byte big-endian encoding produced by :meth:`to_bytes`."""
        if len(data) != KEY_SIZE_BYTES:
            raise SerializationError(
                f"Fr encoding must be {KEY_SIZE_BYTES} bytes, got {len(data)}"
            )
        value = int.from_bytes(data, "big")
        if value >= cls.MODULUS:
            raise SerializationError("Fr encoding is not a canonical field element")
        return cls(value)

    @classmethod
    def reduce_bytes(cls, data: bytes) -> "Fr":
        """Map arbitrary bytes into the field by modular reduction.

        Used to hash byte strings (message payloads, domain tags) into
        field elements; unlike :meth:`from_bytes` this never fails.
        """
        return cls(int.from_bytes(data, "big"))

    # -- accessors ---------------------------------------------------------

    @property
    def value(self) -> int:
        """The canonical integer representative in ``[0, MODULUS)``."""
        return self._value

    def to_bytes(self) -> bytes:
        """Fixed 32-byte big-endian encoding (the paper's 32 B key size)."""
        return self._value.to_bytes(KEY_SIZE_BYTES, "big")

    def is_zero(self) -> bool:
        return self._value == 0

    # -- arithmetic ---------------------------------------------------------

    def _coerce(self, other: FrLike) -> int:
        if isinstance(other, Fr):
            return other._value
        if isinstance(other, int):
            return other % self.MODULUS
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: FrLike) -> "Fr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return Fr(self._value + rhs)

    __radd__ = __add__

    def __sub__(self, other: FrLike) -> "Fr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return Fr(self._value - rhs)

    def __rsub__(self, other: FrLike) -> "Fr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return Fr(rhs - self._value)

    def __mul__(self, other: FrLike) -> "Fr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return Fr(self._value * rhs)

    __rmul__ = __mul__

    def __neg__(self) -> "Fr":
        return Fr(-self._value)

    def __pow__(self, exponent: int) -> "Fr":
        if not isinstance(exponent, int):
            return NotImplemented
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return Fr(pow(self._value, exponent, self.MODULUS))

    def inverse(self) -> "Fr":
        """Multiplicative inverse; raises :class:`FieldError` on zero."""
        if self._value == 0:
            raise FieldError("zero has no multiplicative inverse")
        return Fr(pow(self._value, -1, self.MODULUS))

    def __truediv__(self, other: FrLike) -> "Fr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return self * Fr(rhs).inverse()

    def __rtruediv__(self, other: FrLike) -> "Fr":
        rhs = self._coerce(other)
        if rhs is NotImplemented:
            return NotImplemented
        return Fr(rhs) * self.inverse()

    # -- comparison / hashing -------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Fr):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other % self.MODULUS
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Fr({self._value})"


def fr_sum(elements: Iterable[FrLike]) -> Fr:
    """Sum an iterable of field elements (empty sum is zero)."""
    total = 0
    for element in elements:
        total += int(Fr(element))
    return Fr(total)


def fr_product(elements: Iterable[FrLike]) -> Fr:
    """Multiply an iterable of field elements (empty product is one)."""
    total = 1
    for element in elements:
        total = (total * int(Fr(element))) % Fr.MODULUS
    return Fr(total)
