"""Shamir secret sharing specialised to the RLN rate-limit line.

RLN enforces "one message per epoch" with a degree-1 Shamir polynomial:
for a member with secret ``sk`` and epoch (external nullifier) ``e``, the
line is::

    A(x) = sk + a1 * x        with  a1 = H(sk, e)

Each published message ``m`` reveals the single evaluation
``(x, y) = (H(m), A(H(m)))``. One point reveals nothing about ``sk``
(perfect secrecy of Shamir at threshold 2); two points — i.e. two
*different* messages in the same epoch — determine the line and hence
``sk = A(0)``, enabling anyone to slash the spammer.

This module provides the general k-of-n machinery (Lagrange interpolation
at zero) plus RLN-specific helpers, so tests can exercise both the
protocol path and the general algebra.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from ..errors import ShamirError
from .field import Fr
from .hashing import hash2


@dataclass(frozen=True)
class Share:
    """A single evaluation ``(x, A(x))`` of the sharing polynomial."""

    x: Fr
    y: Fr


def evaluate_polynomial(coefficients: Sequence[Fr], x: Fr) -> Fr:
    """Horner evaluation; ``coefficients[0]`` is the constant term."""
    result = Fr.zero()
    for coefficient in reversed(coefficients):
        result = result * x + coefficient
    return result


def make_shares(
    secret: Fr, coefficients: Sequence[Fr], xs: Iterable[Fr]
) -> List[Share]:
    """Share ``secret`` with the given higher-order coefficients.

    The polynomial is ``secret + coefficients[0]*x + coefficients[1]*x^2 ...``.
    """
    poly = [Fr(secret), *[Fr(c) for c in coefficients]]
    shares = []
    for x in xs:
        x = Fr(x)
        if x.is_zero():
            raise ShamirError("share abscissa x = 0 would leak the secret")
        shares.append(Share(x=x, y=evaluate_polynomial(poly, x)))
    return shares


def reconstruct_secret(shares: Sequence[Share]) -> Fr:
    """Lagrange-interpolate the polynomial at zero from ``k`` shares.

    The caller must supply exactly as many shares as the polynomial has
    coefficients (k = degree + 1); for RLN that is two.
    """
    if len(shares) < 2:
        raise ShamirError("need at least two shares to reconstruct")
    xs = [int(s.x) for s in shares]
    if len(set(xs)) != len(xs):
        raise ShamirError("shares must have pairwise distinct x coordinates")
    secret = Fr.zero()
    for i, share_i in enumerate(shares):
        numerator = Fr.one()
        denominator = Fr.one()
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = numerator * share_j.x
            denominator = denominator * (share_j.x - share_i.x)
        secret = secret + share_i.y * (numerator / denominator)
    return secret


# -- RLN-specific helpers -------------------------------------------------------


def rln_line_coefficient(secret: Fr, external_nullifier: Fr) -> Fr:
    """The epoch-bound slope ``a1 = H(sk, e)`` of the RLN line."""
    return hash2(Fr(secret), Fr(external_nullifier))


def rln_share(secret: Fr, external_nullifier: Fr, x: Fr) -> Share:
    """Evaluate the member's RLN line at ``x = H(m)``."""
    a1 = rln_line_coefficient(secret, external_nullifier)
    return make_shares(secret, [a1], [x])[0]


def recover_secret_from_double_signal(
    share_a: Share, share_b: Share
) -> Fr:
    """Reconstruct ``sk`` from the two shares leaked by double-signaling.

    Raises :class:`ShamirError` when the shares coincide (identical
    message hashes do not constitute a rate violation — it is the same
    signal seen twice).
    """
    if share_a.x == share_b.x:
        raise ShamirError(
            "shares have the same x coordinate; not a double-signal"
        )
    return reconstruct_secret([share_a, share_b])
