"""RLN identity key material.

A member's long-term identity is a single field element ``sk`` (the
*identity secret*); the public key registered on-chain is its hash
``pk = H(sk)`` (the *identity commitment*). Both serialize to exactly
32 bytes, matching Section IV of the paper ("Each peer persists a 32B
public and secret keys").
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from ..constants import KEY_SIZE_BYTES
from .field import Fr
from .hashing import hash1


@dataclass(frozen=True)
class IdentitySecret:
    """The member-held secret key ``sk``."""

    element: Fr

    @classmethod
    def generate(cls, rng=None) -> "IdentitySecret":
        """Sample a fresh uniformly random identity secret.

        ``rng`` may be a :class:`random.Random` for deterministic tests;
        by default the OS CSPRNG is used.
        """
        if rng is None:
            value = secrets.randbelow(Fr.MODULUS)
        else:
            value = rng.randrange(Fr.MODULUS)
        return cls(Fr(value))

    def commitment(self) -> "IdentityCommitment":
        """Derive the public identity commitment ``pk = H(sk)``."""
        return IdentityCommitment(hash1(self.element))

    def to_bytes(self) -> bytes:
        return self.element.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "IdentitySecret":
        return cls(Fr.from_bytes(data))

    @property
    def size_bytes(self) -> int:
        """Serialized size; always :data:`KEY_SIZE_BYTES` (32)."""
        return KEY_SIZE_BYTES


@dataclass(frozen=True)
class IdentityCommitment:
    """The on-chain public key ``pk = H(sk)`` (a Merkle-tree leaf)."""

    element: Fr

    def to_bytes(self) -> bytes:
        return self.element.to_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "IdentityCommitment":
        return cls(Fr.from_bytes(data))

    @property
    def size_bytes(self) -> int:
        """Serialized size; always :data:`KEY_SIZE_BYTES` (32)."""
        return KEY_SIZE_BYTES


@dataclass(frozen=True)
class MembershipKeyPair:
    """Convenience bundle of a secret and its commitment."""

    secret: IdentitySecret
    commitment: IdentityCommitment

    @classmethod
    def generate(cls, rng=None) -> "MembershipKeyPair":
        secret = IdentitySecret.generate(rng)
        return cls(secret=secret, commitment=secret.commitment())
