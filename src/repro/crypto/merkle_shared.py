"""Shared copy-on-write membership tree.

The paper has every peer maintain the Merkle tree locally ("Group
Synchronization", Section III). Read literally, a network of N replicas
pays N x O(depth) hashes for every membership event, even though group
sync is deterministic: every honest replica that applied the same event
prefix holds byte-identical state. This module exploits that determinism
without giving up per-replica isolation:

:class:`CanonicalMerkleTree`
    One per (deployment, domain). Holds the *head* state as an
    int-native node dict plus, per applied event, the event itself, the
    resulting root and leaf count, and a per-node undo journal
    ``(version, previous value)``. Any historical version therefore
    stays readable — lagging replicas read through the journal — and a
    replica can fork off the exact version it sits at.

:class:`SharedMerkleView`
    A :class:`~repro.crypto.merkle.MerkleTree`-compatible facade held by
    one replica. A membership event applied through a view either

    * advances the canonical head — the **first** replica to apply it
      pays the O(depth) hashes, once network-wide;
    * matches the event already recorded at the view's version — every
      later replica advances a pointer, **zero** hashing;
    * diverges from the recorded event — the view *forks*: from then on
      it materialises private nodes in an overlay on top of the frozen
      canonical snapshot at its fork version. The canonical tree and
      sibling views never observe a fork's writes, and the fork never
      observes canonical events applied after its fork point.

Matching events by value is sound because a view is only attached while
its state equals the canonical state at its version; identical
operations applied to identical states produce identical trees, so a
matching event *is* the proof that pointer-advancing reproduces what
local hashing would have computed. The equivalence property tests in
``tests/rln/test_membership_store.py`` assert exactly that, under
random interleavings of registrations, slashes, replication and forced
forks.
"""

from __future__ import annotations

from bisect import insort
from typing import Dict, List, Optional, Tuple

from ..errors import MerkleError
from .field import Fr
from .hashing import hash2_int
from .merkle import MerkleProof, zero_hashes_int

#: Event records: ("insert", leaf) appends, ("set", index, leaf)
#: overwrites (slashing writes leaf = 0).
Event = Tuple


class CanonicalMerkleTree:
    """The one copy of a membership tree a whole deployment shares.

    Mutation happens only through :meth:`apply`, called by the single
    attached view that is first to reach a new membership event; every
    state the tree has ever been in remains addressable by version
    (``version`` = number of events applied).

    History (events, roots, undo journal, leaf history) is retained for
    the process lifetime — O(depth) small tuples per event, a few MB
    per domain even at 5k-peer scale. Views never deregister, so there
    is no safe prune point; if that ever binds, cap retention to the
    laggiest attached version (verification only ever consults the
    root window).
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise MerkleError("tree depth must be at least 1")
        self.depth = depth
        self.capacity = 1 << depth
        self._zeros = zero_hashes_int(depth)
        #: Head state; (height, index) -> digest.
        self._nodes: Dict[Tuple[int, int], int] = {}
        #: (height, index) -> [(version, value *before* that version)],
        #: ascending. node_at() binary-searches this for old versions.
        self._journal: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._events: List[Event] = []
        #: _roots[v] / _leaf_counts[v] = state after the first v events.
        self._roots: List[int] = [self._zeros[depth]]
        self._leaf_counts: List[int] = [0]
        #: leaf value -> [(index, version at which it was written)];
        #: the versioned commitment->index map behind find_leaf_at().
        self._leaf_history: Dict[int, List[Tuple[int, int]]] = {}
        #: Events replayed by later replicas without hashing (stat).
        self.events_deduped = 0
        #: Views that diverged and went private (stat).
        self.forks = 0

    # -- head bookkeeping ---------------------------------------------------

    @property
    def version(self) -> int:
        """Number of membership events applied to the head."""
        return len(self._events)

    def event_at(self, version: int) -> Event:
        """The event that moved the head from ``version`` to ``version+1``."""
        return self._events[version]

    def root_at(self, version: int) -> int:
        return self._roots[version]

    def leaf_count_at(self, version: int) -> int:
        return self._leaf_counts[version]

    def state_digest(self) -> Tuple[int, int, int]:
        """``(version, head root, head leaf count)`` — a compact,
        comparable summary of the whole event history (each version's
        root commits to every event before it)."""
        return (self.version, self._roots[-1], self._leaf_counts[-1])

    def apply(self, event: Event) -> Optional[int]:
        """Apply one event at the head; returns the index for inserts.

        Bounds (capacity, assigned-slot) are validated by the calling
        view before the event is built, so the head state is never
        half-mutated by a rejected event.
        """
        new_version = len(self._events) + 1
        count = self._leaf_counts[-1]
        if event[0] == "insert":
            index, value = count, event[1]
            count += 1
        else:
            _, index, value = event
        root = self._write_path(index, value, new_version)
        self._events.append(event)
        self._roots.append(root)
        self._leaf_counts.append(count)
        self._leaf_history.setdefault(value, []).append(
            (index, new_version)
        )
        return index if event[0] == "insert" else None

    def apply_batch(
        self, values, roots_tail: int
    ) -> Tuple[int, List[int]]:
        """Insert ``values`` in order; returns (first index, tail roots).

        The flat canonical tree journals every insert, so a batch is a
        plain loop; the sharded variant
        (:class:`~repro.crypto.merkle_forest.CanonicalShardedTree`)
        overrides this with genesis compaction. The tail holds the
        roots of the last ``min(roots_tail, n)`` versions, oldest
        first — what a replica needs to reproduce the one-by-one root
        window exactly.
        """
        first = self._leaf_counts[-1]
        tail_roots: List[int] = []
        n = len(values)
        if n == 0:
            return first, tail_roots
        if first + n > self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        for value in values:
            self.apply(("insert", int(value)))
        tail_len = min(max(roots_tail, 1), n)
        return first, self._roots[-tail_len:]

    def _write_path(self, index: int, value: int, new_version: int) -> int:
        """Rehash the path above leaf ``index``; returns the new root.

        The fold (sibling order, zero defaults) must stay in lockstep
        with ``MerkleTree._set_leaf`` and ``SharedMerkleView.
        _write_private`` — the loop is deliberately inlined in each
        (it is the hottest path in the process), and the shared-vs-
        independent property suite pins their equivalence.
        """
        nodes, zeros, journal = self._nodes, self._zeros, self._journal
        key = (0, index)
        journal.setdefault(key, []).append(
            (new_version, nodes.get(key, 0))
        )
        nodes[key] = value
        node = value
        node_index = index
        for height in range(1, self.depth + 1):
            sibling = nodes.get(
                (height - 1, node_index ^ 1), zeros[height - 1]
            )
            if node_index & 1:
                node = hash2_int(sibling, node)
            else:
                node = hash2_int(node, sibling)
            node_index >>= 1
            key = (height, node_index)
            journal.setdefault(key, []).append(
                (new_version, nodes.get(key, zeros[height]))
            )
            nodes[key] = node
        return node

    # -- versioned reads -----------------------------------------------------

    def node_at(self, height: int, index: int, version: int) -> int:
        """Digest of node ``(height, index)`` as of ``version``."""
        key = (height, index)
        if version < len(self._events):
            entries = self._journal.get(key)
            if entries:
                # First journal entry strictly after `version` recorded
                # the value this snapshot still sees.
                lo, hi = 0, len(entries)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if entries[mid][0] <= version:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo < len(entries):
                    return entries[lo][1]
        return self._nodes.get(key, self._zeros[height])

    def find_leaf_at(self, value: int, version: int) -> Optional[int]:
        """Lowest index holding ``value`` as of ``version`` (or None)."""
        best: Optional[int] = None
        for index, written in self._leaf_history.get(value, ()):
            if written <= version and (best is None or index < best):
                if self.node_at(0, index, version) == value:
                    best = index
        return best

    def leaf_slots_at(self, version: int) -> Dict[int, List[int]]:
        """value -> ascending indices snapshot (fork bootstrap).

        O(members) — paid only when a view diverges, which is the rare
        case the copy-on-write design optimises for.
        """
        slots: Dict[int, List[int]] = {}
        for index in range(self._leaf_counts[version]):
            slots.setdefault(self.node_at(0, index, version), []).append(
                index
            )
        return slots

    def storage_bytes(self) -> int:
        """Bytes of the shared head node store (32 B per node)."""
        return 32 * len(self._nodes)


class SharedMerkleView:
    """One replica's view of a :class:`CanonicalMerkleTree`.

    Drop-in for :class:`~repro.crypto.merkle.MerkleTree` wherever a
    :class:`~repro.rln.membership.LocalGroup` needs a tree: the same
    mutation, query, proof and clone surface, with structural sharing
    underneath until the replica diverges.
    """

    def __init__(
        self, canonical: CanonicalMerkleTree, version: int = 0
    ) -> None:
        self._canon = canonical
        self.depth = canonical.depth
        self.capacity = canonical.capacity
        #: Sub-tree depth when the canonical tree is sharded (a
        #: :class:`~repro.crypto.merkle_forest.CanonicalShardedTree`);
        #: None for a flat canonical tree.
        self.sub_depth = getattr(canonical, "sub_depth", None)
        self._zeros = canonical._zeros
        self._version = version
        self._forked = False
        # Populated on fork:
        self._fork_version = 0
        self._overlay: Optional[Dict[Tuple[int, int], int]] = None
        self._private_count = 0
        self._leaf_slots: Optional[Dict[int, List[int]]] = None

    # -- state ---------------------------------------------------------------

    @property
    def is_forked(self) -> bool:
        """True once this replica diverged and went private."""
        return self._forked

    @property
    def version(self) -> int:
        """Canonical version this view has applied (fork point if forked)."""
        return self._fork_version if self._forked else self._version

    def _node(self, height: int, index: int) -> int:
        if self._forked:
            value = self._overlay.get((height, index))
            if value is not None:
                return value
            return self._canon.node_at(height, index, self._fork_version)
        return self._canon.node_at(height, index, self._version)

    @property
    def root(self) -> Fr:
        if self._forked:
            return Fr(self._node(self.depth, 0))
        return Fr(self._canon.root_at(self._version))

    @property
    def leaf_count(self) -> int:
        if self._forked:
            return self._private_count
        return self._canon.leaf_count_at(self._version)

    def leaf(self, index: int) -> Fr:
        self._check_index(index)
        return Fr(self._node(0, index))

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise MerkleError(
                f"leaf index {index} out of range for depth-{self.depth} tree"
            )

    # -- synced mutation (group-sync authority) --------------------------------

    def synced_insert(self, leaf: Fr) -> int:
        """Append ``leaf`` as a *membership event* from the synced log.

        Only this path may advance the canonical head: the contract
        event log is the deployment's one source of truth, so the first
        replica to apply an event records it (and pays the hashing) for
        everyone. Later replicas advance a pointer; a replica whose
        event disagrees with the recorded one is on a different log and
        forks.
        """
        if self.leaf_count >= self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        value = Fr(leaf)._value
        if not self._forked:
            canon = self._canon
            if self._version == canon.version:
                index = canon.apply(("insert", value))
                self._version += 1
                return index
            if canon.event_at(self._version) == ("insert", value):
                index = canon.leaf_count_at(self._version)
                self._version += 1
                canon.events_deduped += 1
                return index
            self._fork()
        return self._insert_private(value)

    def synced_update(self, index: int, leaf: Fr) -> None:
        """Overwrite slot ``index`` as a membership event (slash = zero).

        Same head/dedup/fork contract as :meth:`synced_insert`.
        """
        self._check_index(index)
        if index >= self.leaf_count:
            raise MerkleError(f"leaf {index} has not been inserted yet")
        value = Fr(leaf)._value
        if not self._forked:
            canon = self._canon
            event = ("set", index, value)
            if self._version == canon.version:
                canon.apply(event)
                self._version += 1
                return
            if canon.event_at(self._version) == event:
                self._version += 1
                canon.events_deduped += 1
                return
            self._fork()
        self._set_private(index, value)

    def synced_insert_batch(
        self, leaves, roots_tail: int
    ) -> Tuple[int, List[Fr]]:
        """Apply one *batch* membership event (genesis registration).

        Same head/dedup/fork contract as :meth:`synced_insert`, applied
        value by value; the head case hands the whole remainder to the
        canonical tree's :meth:`~CanonicalMerkleTree.apply_batch` so a
        sharded canonical tree can compact the genesis prefix. Returns
        ``(first index, roots of the last min(roots_tail, n) states,
        oldest first)`` — exactly the roots a replica must remember for
        its window to match a one-by-one replay.
        """
        values = [Fr(leaf)._value for leaf in leaves]
        n = len(values)
        if n == 0:
            return self.leaf_count, []
        if self.leaf_count + n > self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        first = self.leaf_count
        need_from = n - min(max(roots_tail, 1), n)
        tail_roots: List[Fr] = []
        i = 0
        canon = self._canon
        while i < n:
            if self._forked:
                self._insert_private(values[i])
                if i >= need_from:
                    tail_roots.append(Fr(self._node(self.depth, 0)))
                i += 1
                continue
            if self._version == canon.version:
                _, tail = canon.apply_batch(values[i:], roots_tail)
                self._version += n - i
                tail_roots.extend(Fr(root) for root in tail)
                break
            if canon.event_at(self._version) == ("insert", values[i]):
                self._version += 1
                canon.events_deduped += 1
                if i >= need_from:
                    # Raises MerkleError if this version's root was
                    # compacted — only possible when this batch is
                    # shorter than the canonical genesis batch, i.e.
                    # the replica is on a different event log anyway.
                    tail_roots.append(Fr(canon.root_at(self._version)))
                i += 1
                continue
            self._fork()
        return first, tail_roots[-(n - need_from):]

    # -- out-of-band mutation --------------------------------------------------

    def insert(self, leaf: Fr) -> int:
        """Append ``leaf`` outside the synced event log.

        An out-of-band mutation means this replica no longer follows
        the deployment's log (adversarial desync, test manipulation),
        so the view forks *even at the head* — it must never push
        private state into the canonical tree that every honest replica
        would then mismatch against.
        """
        if self.leaf_count >= self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        if not self._forked:
            self._fork()
        return self._insert_private(Fr(leaf)._value)

    def update(self, index: int, leaf: Fr) -> None:
        """Overwrite an assigned slot outside the synced event log."""
        self._check_index(index)
        if index >= self.leaf_count:
            raise MerkleError(f"leaf {index} has not been inserted yet")
        if not self._forked:
            self._fork()
        self._set_private(index, Fr(leaf)._value)

    def delete(self, index: int) -> None:
        self.update(index, Fr.zero())

    def _insert_private(self, value: int) -> int:
        index = self._private_count
        self._index_private(value, index)
        self._write_private(index, value)
        self._private_count = index + 1
        return index

    def _set_private(self, index: int, value: int) -> None:
        old = self._node(0, index)
        if old != value:
            self._unindex_private(old, index)
            self._index_private(value, index)
        self._write_private(index, value)

    # -- fork (the copy-on-write event) ---------------------------------------

    def _fork(self) -> None:
        """Detach: freeze the canonical snapshot, go private.

        From here every mutation writes into a private overlay; reads
        fall through to the canonical state *as of the fork version*,
        which the undo journal keeps addressable forever.
        """
        canon = self._canon
        self._fork_version = self._version
        self._overlay = {}
        self._private_count = canon.leaf_count_at(self._version)
        self._leaf_slots = canon.leaf_slots_at(self._version)
        self._forked = True
        canon.forks += 1

    def _index_private(self, value: int, index: int) -> None:
        slots = self._leaf_slots.get(value)
        if slots is None:
            self._leaf_slots[value] = [index]
        else:
            insort(slots, index)

    def _unindex_private(self, value: int, index: int) -> None:
        slots = self._leaf_slots.get(value)
        if slots is None:
            return
        try:
            slots.remove(index)
        except ValueError:
            return
        if not slots:
            del self._leaf_slots[value]

    def _write_private(self, index: int, value: int) -> None:
        overlay = self._overlay
        overlay[(0, index)] = value
        node = value
        node_index = index
        for height in range(1, self.depth + 1):
            sibling = self._node(height - 1, node_index ^ 1)
            if node_index & 1:
                node = hash2_int(sibling, node)
            else:
                node = hash2_int(node, sibling)
            node_index >>= 1
            overlay[(height, node_index)] = node

    # -- queries / proofs ------------------------------------------------------

    def find_leaf(self, leaf: Fr) -> Optional[int]:
        """First index holding ``leaf`` (O(1)-ish: versioned index map)."""
        value = Fr(leaf)._value
        if self._forked:
            slots = self._leaf_slots.get(value)
            return slots[0] if slots else None
        return self._canon.find_leaf_at(value, self._version)

    def proof(self, index: int) -> MerkleProof:
        """Authentication path for leaf ``index`` at this view's state."""
        self._check_index(index)
        siblings: List[Fr] = []
        bits: List[int] = []
        node_index = index
        for height in range(self.depth):
            bits.append(node_index & 1)
            siblings.append(Fr(self._node(height, node_index ^ 1)))
            node_index >>= 1
        return MerkleProof(
            leaf=self.leaf(index),
            leaf_index=index,
            siblings=tuple(siblings),
            path_bits=tuple(bits),
        )

    def two_level_proof(self, index: int):
        """Sharded proof shape (sub path + top path); sharded trees only.

        ``flatten()`` of the result equals :meth:`proof` of the same
        index, so this is a presentation change, not a soundness one.
        """
        if self.sub_depth is None:
            raise MerkleError(
                "two-level proofs require a sharded canonical tree"
            )
        from .merkle_forest import TwoLevelProof

        return TwoLevelProof.from_flat(self.proof(index), self.sub_depth)

    def leaves(self) -> List[Fr]:
        return [self.leaf(i) for i in range(self.leaf_count)]

    def clone(self) -> "SharedMerkleView":
        """A sibling view of the same state.

        O(1) while attached (both views share the canonical structure);
        a forked view copies its private overlay so the clone is fully
        isolated from further mutation of either side.
        """
        other = SharedMerkleView(self._canon, self._version)
        if self._forked:
            other._forked = True
            other._fork_version = self._fork_version
            other._overlay = dict(self._overlay)
            other._private_count = self._private_count
            other._leaf_slots = {
                value: list(slots)
                for value, slots in self._leaf_slots.items()
            }
        return other

    # -- storage accounting ----------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes *this view* stores privately.

        Attached views share all structure with the canonical tree (see
        :meth:`CanonicalMerkleTree.storage_bytes` for the shared cost);
        forked views pay for their overlay.
        """
        if self._forked:
            return 32 * len(self._overlay)
        return 0

    def full_storage_bytes(self) -> int:
        """Same formula as :meth:`MerkleTree.full_storage_bytes`."""
        return 32 * ((1 << (self.depth + 1)) - 1)
