"""R1CS gadgets: Poseidon permutation, Merkle path, selectors.

A *gadget* synthesises the constraints of one reusable sub-relation into
a :class:`~repro.crypto.zksnark.r1cs.ConstraintSystem` and returns the
output wires as linear combinations. The gadgets here are exactly the
building blocks of the RLN circuit: the Poseidon hash (for commitments,
nullifiers and tree nodes), the Merkle authentication path, and the
conditional swap used at each tree level.

Constraint counts (with the circomlib round schedule):

* ``x^5`` S-box — 3 constraints (x², x⁴, x⁵);
* Poseidon t=3 — 8 full rounds x 3 S-boxes + 57 partial rounds x 1 S-box
  = 81 S-boxes = 243 constraints (all matrix/constant work is linear and
  free);
* Poseidon t=2 — 8x2 + 56 = 72 S-boxes = 216 constraints;
* Merkle level — 1 boolean + 1 swap + 243 (t=3 hash) = 245 constraints;
  a depth-20 path costs 4 900 constraints.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ...errors import CircuitError
from ..field import Fr
from ..poseidon import poseidon_parameters
from .r1cs import ConstraintSystem, LCLike, LinearCombination


def sbox_gadget(
    cs: ConstraintSystem, x: LCLike, annotation: str = "sbox"
) -> LinearCombination:
    """``x -> x^5`` with three multiplication constraints."""
    x = LinearCombination.coerce(x)
    x2 = cs.mul(x, x, f"{annotation}.x2")
    x4 = cs.mul(x2, x2, f"{annotation}.x4")
    x5 = cs.mul(x4, x, f"{annotation}.x5")
    return x5.lc()


def poseidon_permutation_gadget(
    cs: ConstraintSystem,
    state: Sequence[LCLike],
    annotation: str = "poseidon",
) -> List[LinearCombination]:
    """Synthesise the full Poseidon permutation over ``state`` wires."""
    t = len(state)
    params = poseidon_parameters(t)
    wires = [LinearCombination.coerce(s) for s in state]

    half_full = params.full_rounds // 2
    partial_start = half_full
    partial_end = half_full + params.partial_rounds

    for round_index in range(params.total_rounds):
        base = round_index * t
        wires = [
            wire + params.round_constants[base + i]
            for i, wire in enumerate(wires)
        ]
        if partial_start <= round_index < partial_end:
            wires[0] = sbox_gadget(
                cs, wires[0], f"{annotation}.r{round_index}.s0"
            )
        else:
            wires = [
                sbox_gadget(cs, wire, f"{annotation}.r{round_index}.s{i}")
                for i, wire in enumerate(wires)
            ]
        wires = [
            sum(
                (wires[j] * params.mds[i][j] for j in range(t)),
                LinearCombination(),
            )
            for i in range(t)
        ]
    return wires


def poseidon_hash_gadget(
    cs: ConstraintSystem,
    inputs: Sequence[LCLike],
    annotation: str = "hash",
) -> LinearCombination:
    """Fixed-arity Poseidon sponge: domain tag ‖ inputs, one permutation."""
    n = len(inputs)
    if n not in (1, 2):
        raise CircuitError(f"poseidon_hash_gadget takes 1 or 2 inputs, got {n}")
    state: List[LCLike] = [LinearCombination.coerce(Fr(n)), *inputs]
    return poseidon_permutation_gadget(cs, state, annotation)[0]


def conditional_swap_gadget(
    cs: ConstraintSystem,
    bit: LCLike,
    left_if_zero: LCLike,
    right_if_zero: LCLike,
    annotation: str = "swap",
) -> Tuple[LinearCombination, LinearCombination]:
    """Return ``(l, r)`` equal to the inputs when ``bit = 0``, swapped
    when ``bit = 1`` — one multiplication constraint.

    ``delta = bit * (right - left)``, then ``l = left + delta`` and
    ``r = right - delta``.
    """
    bit = LinearCombination.coerce(bit)
    a = LinearCombination.coerce(left_if_zero)
    b = LinearCombination.coerce(right_if_zero)
    delta = cs.mul(bit, b - a, f"{annotation}.delta").lc()
    return a + delta, b - delta


def merkle_path_gadget(
    cs: ConstraintSystem,
    leaf: LCLike,
    path_bits: Sequence[LCLike],
    siblings: Sequence[LCLike],
    annotation: str = "merkle",
) -> LinearCombination:
    """Fold an authentication path up to the root wire.

    ``path_bits[i] = 1`` means the running node is the right child at
    height ``i``. Each bit is constrained boolean.
    """
    if len(path_bits) != len(siblings):
        raise CircuitError("path_bits and siblings must have equal length")
    node = LinearCombination.coerce(leaf)
    for height, (bit, sibling) in enumerate(zip(path_bits, siblings)):
        bit = LinearCombination.coerce(bit)
        cs.enforce_boolean(bit, f"{annotation}.h{height}.bit")
        left, right = conditional_swap_gadget(
            cs, bit, node, sibling, f"{annotation}.h{height}"
        )
        node = poseidon_hash_gadget(
            cs, [left, right], f"{annotation}.h{height}.hash"
        )
    return node
