"""Calibrated performance model for zkSNARK operations.

The paper reports (Section IV) measurements from the Rust RLN library on
an iPhone 8: proof generation ≈ 0.5 s for a group of 2**32 members,
constant proof verification ≈ 30 ms, 32 B keys and a 3.89 MB prover key.
Our backend is a simulation, so these latencies cannot be *measured*;
instead this model injects them into the discrete-event simulator so
that system-level results (propagation latency, routing throughput,
device suitability) reflect the paper's constants.

Proving cost in Groth16 is dominated by multi-scalar multiplications
linear in the number of constraints; for the RLN circuit the constraint
count is ``c0 + 245 * depth`` (Merkle levels dominate), so we scale the
paper's 0.5 s figure by constraint count relative to depth 32. Verification
is a fixed pairing product — constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...constants import (
    PAPER_PROOF_GENERATION_DEPTH,
    PAPER_PROOF_GENERATION_SECONDS,
    PAPER_PROOF_VERIFICATION_SECONDS,
)

#: Constraints per Merkle level (boolean + swap + t=3 Poseidon hash).
CONSTRAINTS_PER_MERKLE_LEVEL = 245

#: Depth-independent constraints of the RLN circuit: pk = H1(sk) (216),
#: a1 = H2(sk, e) (243), phi = H1(a1) (216), the share product (1) and
#: the three public-output equality constraints (root, y, phi).
RLN_BASE_CONSTRAINTS = 216 + 243 + 216 + 1 + 3


def rln_constraint_count(depth: int) -> int:
    """Closed-form constraint count of the RLN circuit at ``depth``."""
    return RLN_BASE_CONSTRAINTS + CONSTRAINTS_PER_MERKLE_LEVEL * depth


@dataclass(frozen=True)
class PerformanceModel:
    """Modeled zkSNARK latencies, calibrated to the paper's numbers.

    ``device_speed`` rescales all costs relative to the paper's iPhone 8
    reference device (2.0 means twice as fast). Used by benchmarks to
    model desktops vs phones.
    """

    reference_prove_seconds: float = PAPER_PROOF_GENERATION_SECONDS
    reference_depth: int = PAPER_PROOF_GENERATION_DEPTH
    verify_seconds: float = PAPER_PROOF_VERIFICATION_SECONDS
    device_speed: float = 1.0

    def prove_seconds(self, depth: int) -> float:
        """Modeled proof-generation latency for a depth-``depth`` tree."""
        scale = rln_constraint_count(depth) / rln_constraint_count(
            self.reference_depth
        )
        return self.reference_prove_seconds * scale / self.device_speed

    def verify_seconds_for(self, depth: int) -> float:
        """Modeled verification latency — constant in ``depth`` by design."""
        del depth  # verification cost does not depend on the group size
        return self.verify_seconds / self.device_speed

    def with_device_speed(self, speed: float) -> "PerformanceModel":
        """A copy of this model for a device ``speed``x the reference."""
        return PerformanceModel(
            reference_prove_seconds=self.reference_prove_seconds,
            reference_depth=self.reference_depth,
            verify_seconds=self.verify_seconds,
            device_speed=speed,
        )


#: Shared default model (iPhone 8 calibration).
DEFAULT_PERFORMANCE_MODEL = PerformanceModel()
