"""Simulated zkSNARK stack: R1CS, gadgets, Groth16 backend, timing model."""

from .groth16 import (
    Proof,
    ProvingKey,
    Statement,
    VerifyingKey,
    prove,
    trusted_setup,
    verify,
)
from .r1cs import Constraint, ConstraintSystem, LinearCombination, Variable
from .timing import (
    DEFAULT_PERFORMANCE_MODEL,
    PerformanceModel,
    rln_constraint_count,
)

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "LinearCombination",
    "Variable",
    "Proof",
    "ProvingKey",
    "VerifyingKey",
    "Statement",
    "trusted_setup",
    "prove",
    "verify",
    "PerformanceModel",
    "DEFAULT_PERFORMANCE_MODEL",
    "rln_constraint_count",
]
