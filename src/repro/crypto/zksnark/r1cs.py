"""Rank-1 constraint system (R1CS) with assignment-carrying synthesis.

Groth16 — the proof system the paper's RLN library uses — proves
satisfiability of an R1CS: a set of constraints ``<A,w> * <B,w> = <C,w>``
over a witness vector ``w`` whose prefix is public. This module
implements the constraint system itself; the RLN relation is synthesised
from gadgets in :mod:`repro.crypto.zksnark.gadgets` and proved by the
simulated backend in :mod:`repro.crypto.zksnark.groth16`.

Design notes
------------
* Synthesis is *assignment-carrying*: allocating a variable assigns its
  value immediately, so one pass both builds the constraint matrix and
  produces the witness. Provers run this pass; the constraint *shape*
  (for counting and setup) is obtained by synthesising with any valid
  input.
* Linear combinations are first-class (:class:`LinearCombination`), so
  additions, scalings and the Poseidon MDS layers cost **zero**
  constraints, exactly as in real R1CS front-ends (circom, bellman).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ...errors import CircuitError
from ..field import Fr

LCLike = Union["LinearCombination", "Variable", Fr, int]


@dataclass(frozen=True)
class Variable:
    """A wire in the circuit, identified by its witness index."""

    index: int
    name: str = ""

    def lc(self) -> "LinearCombination":
        return LinearCombination({self.index: Fr.one()}, Fr.zero())


class LinearCombination:
    """``sum(coeff_i * w_i) + constant`` over witness variables."""

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Dict[int, Fr]] = None,
        constant: Fr = Fr.zero(),
    ) -> None:
        self.terms: Dict[int, Fr] = terms or {}
        self.constant = Fr(constant)

    @staticmethod
    def coerce(value: LCLike) -> "LinearCombination":
        if isinstance(value, LinearCombination):
            return value
        if isinstance(value, Variable):
            return value.lc()
        if isinstance(value, (Fr, int)):
            return LinearCombination({}, Fr(value))
        raise CircuitError(f"cannot use {type(value).__name__} in a constraint")

    def __add__(self, other: LCLike) -> "LinearCombination":
        other = LinearCombination.coerce(other)
        terms = dict(self.terms)
        for index, coeff in other.terms.items():
            merged = terms.get(index, Fr.zero()) + coeff
            if merged.is_zero():
                terms.pop(index, None)
            else:
                terms[index] = merged
        return LinearCombination(terms, self.constant + other.constant)

    __radd__ = __add__

    def __sub__(self, other: LCLike) -> "LinearCombination":
        return self + (LinearCombination.coerce(other) * Fr(-1))

    def __rsub__(self, other: LCLike) -> "LinearCombination":
        return LinearCombination.coerce(other) + (self * Fr(-1))

    def __mul__(self, scalar: Union[Fr, int]) -> "LinearCombination":
        scalar = Fr(scalar)
        if scalar.is_zero():
            return LinearCombination()
        return LinearCombination(
            {i: c * scalar for i, c in self.terms.items()},
            self.constant * scalar,
        )

    __rmul__ = __mul__

    def evaluate(self, assignment: Sequence[Fr]) -> Fr:
        """Value of this combination under a witness assignment."""
        total = int(self.constant)
        for index, coeff in self.terms.items():
            total += int(coeff) * int(assignment[index])
        return Fr(total)

    def is_constant(self) -> bool:
        return not self.terms


@dataclass(frozen=True)
class Constraint:
    """One rank-1 constraint ``a * b = c``."""

    a: LinearCombination
    b: LinearCombination
    c: LinearCombination
    annotation: str = ""


@dataclass
class ConstraintSystem:
    """Mutable R1CS under construction, with live witness values.

    Witness layout follows Groth16 convention: index 0 is the constant
    ``one`` wire, public inputs come next, private (auxiliary) variables
    after them. Public inputs must therefore be allocated before any
    private variable.
    """

    constraints: List[Constraint] = field(default_factory=list)
    assignment: List[Fr] = field(default_factory=lambda: [Fr.one()])
    public_count: int = 0
    _private_started: bool = field(default=False, repr=False)

    # -- allocation ----------------------------------------------------------

    def alloc_public(self, name: str, value: Fr) -> Variable:
        """Allocate a public-input wire (must precede private wires)."""
        if self._private_started:
            raise CircuitError(
                "public inputs must be allocated before private variables"
            )
        variable = Variable(index=len(self.assignment), name=name)
        self.assignment.append(Fr(value))
        self.public_count += 1
        return variable

    def alloc(self, name: str, value: Fr) -> Variable:
        """Allocate a private (auxiliary) wire carrying ``value``."""
        self._private_started = True
        variable = Variable(index=len(self.assignment), name=name)
        self.assignment.append(Fr(value))
        return variable

    # -- constraint emission ---------------------------------------------------

    def enforce(
        self, a: LCLike, b: LCLike, c: LCLike, annotation: str = ""
    ) -> None:
        """Add the constraint ``a * b = c`` and check it holds now.

        Checking at synthesis time means an inconsistent witness fails
        fast with the offending annotation, instead of surfacing as an
        opaque proving error later.
        """
        constraint = Constraint(
            a=LinearCombination.coerce(a),
            b=LinearCombination.coerce(b),
            c=LinearCombination.coerce(c),
            annotation=annotation,
        )
        lhs = constraint.a.evaluate(self.assignment) * constraint.b.evaluate(
            self.assignment
        )
        rhs = constraint.c.evaluate(self.assignment)
        if lhs != rhs:
            raise CircuitError(
                f"constraint unsatisfied at synthesis: {annotation or '<anon>'}"
            )
        self.constraints.append(constraint)

    def enforce_equal(self, a: LCLike, b: LCLike, annotation: str = "") -> None:
        """``a == b`` as the rank-1 constraint ``(a - b) * 1 = 0``."""
        diff = LinearCombination.coerce(a) - LinearCombination.coerce(b)
        self.enforce(diff, Fr.one(), Fr.zero(), annotation or "equality")

    # -- derived allocation helpers -----------------------------------------------

    def mul(self, a: LCLike, b: LCLike, annotation: str = "") -> Variable:
        """Allocate ``out = a * b`` with its defining constraint."""
        a = LinearCombination.coerce(a)
        b = LinearCombination.coerce(b)
        value = a.evaluate(self.assignment) * b.evaluate(self.assignment)
        out = self.alloc(annotation or "product", value)
        self.enforce(a, b, out, annotation or "product")
        return out

    def square(self, a: LCLike, annotation: str = "") -> Variable:
        return self.mul(a, a, annotation or "square")

    def enforce_boolean(self, variable: LCLike, annotation: str = "") -> None:
        """``v * (1 - v) = 0`` — v is 0 or 1."""
        v = LinearCombination.coerce(variable)
        self.enforce(
            v, LinearCombination.coerce(Fr.one()) - v, Fr.zero(),
            annotation or "boolean",
        )

    # -- inspection --------------------------------------------------------------

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_variables(self) -> int:
        """Total witness length, including the constant-one wire."""
        return len(self.assignment)

    def public_inputs(self) -> Tuple[Fr, ...]:
        """Values of the public-input wires, in allocation order."""
        return tuple(self.assignment[1 : 1 + self.public_count])

    def is_satisfied(self) -> bool:
        """Re-check every constraint against the current assignment."""
        return self.check_assignment(self.assignment)

    def check_assignment(self, assignment: Sequence[Fr]) -> bool:
        """Check every constraint against an arbitrary assignment."""
        if len(assignment) != len(self.assignment):
            return False
        for constraint in self.constraints:
            lhs = constraint.a.evaluate(assignment) * constraint.b.evaluate(
                assignment
            )
            if lhs != constraint.c.evaluate(assignment):
                return False
        return True

    def evaluate(self, lc: LCLike) -> Fr:
        """Value of any linear combination under the live assignment."""
        return LinearCombination.coerce(lc).evaluate(self.assignment)
