"""Simulated Groth16 backend.

The paper's RLN library proves the RLN relation with Groth16 over BN254.
Pairing-based proving is out of scope for a pure-Python reproduction, so
this module provides a *behaviourally faithful* simulation:

* **Setup** produces a proving key / verifying key pair bound to a named
  circuit. The proving key records the circuit's R1CS size and models
  the paper's 3.89 MB prover-key footprint; keys carry a shared binding
  secret standing in for the structured reference string.
* **Prove** refuses to produce a proof unless the statement's witness
  actually satisfies the relation — either via the fast native checker
  or by synthesising and checking the full R1CS. Completeness and
  (in-simulation) soundness therefore hold: no valid witness, no proof.
* **Proofs** are constant-size (128 bytes, the compressed BN254 Groth16
  size), randomised per invocation (zero-knowledge: two proofs of the
  same statement are unlinkable and reveal nothing about the witness),
  and bound to the public inputs by a keyed MAC standing in for the
  pairing check.
* **Verify** recomputes the binding MAC; it runs in constant time with
  respect to group size, matching the paper's ≈30 ms constant
  verification cost (the wall-clock value itself comes from
  :mod:`repro.crypto.zksnark.timing`, not from this code).

DESIGN.md documents this substitution (real Groth16 → checked-witness
MAC binding) and why it preserves the protocol-relevant behaviour.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Optional, Protocol, Sequence, Tuple, runtime_checkable

from ...constants import PROOF_SIZE_BYTES, PROVER_KEY_SIZE_BYTES
from ...errors import ProofError, SerializationError
from ..field import Fr
from .r1cs import ConstraintSystem


@runtime_checkable
class Statement(Protocol):
    """What a circuit instance must expose to be proved.

    ``check_witness`` is the fast native relation check used by default;
    ``synthesize`` builds the full R1CS for constraint-count reporting
    and end-to-end R1CS-mode proving.
    """

    def public_inputs(self) -> Tuple[Fr, ...]: ...

    def check_witness(self) -> bool: ...

    def synthesize(self) -> ConstraintSystem: ...


@dataclass(frozen=True)
class Proof:
    """A constant-size simulated Groth16 proof ``(pi_a, pi_b, pi_c)``."""

    pi_a: bytes  # 32 B — stands in for a compressed G1 point
    pi_b: bytes  # 64 B — stands in for a compressed G2 point
    pi_c: bytes  # 32 B — the public-input binding

    def to_bytes(self) -> bytes:
        data = self.pi_a + self.pi_b + self.pi_c
        if len(data) != PROOF_SIZE_BYTES:
            raise SerializationError("malformed proof components")
        return data

    @classmethod
    def from_bytes(cls, data: bytes) -> "Proof":
        if len(data) != PROOF_SIZE_BYTES:
            raise SerializationError(
                f"proof must be {PROOF_SIZE_BYTES} bytes, got {len(data)}"
            )
        return cls(pi_a=data[:32], pi_b=data[32:96], pi_c=data[96:128])

    @property
    def size_bytes(self) -> int:
        return PROOF_SIZE_BYTES


@dataclass(frozen=True)
class VerifyingKey:
    """Public verification material for one circuit."""

    circuit_id: str
    binding_key: bytes
    num_public_inputs: int

    def _binding(self, pi_a: bytes, pi_b: bytes, public_inputs: Sequence[Fr]) -> bytes:
        payload = bytearray()
        payload += self.circuit_id.encode()
        payload += b"\x00" + pi_a + pi_b
        for value in public_inputs:
            payload += Fr(value).to_bytes()
        return hmac.new(self.binding_key, bytes(payload), hashlib.sha256).digest()


@dataclass(frozen=True)
class ProvingKey:
    """Prover material: the verifying key plus circuit metadata.

    ``size_bytes`` models the paper's 3.89 MB prover key; the real key
    scales with circuit size, so we scale it by constraint count
    relative to the depth-20 RLN circuit when that count is known.
    """

    verifying_key: VerifyingKey
    num_constraints: Optional[int] = None

    #: Constraint count of the depth-20 RLN circuit (the configuration
    #: the paper's 3.89 MB prover key belongs to); see
    #: :func:`repro.crypto.zksnark.timing.rln_constraint_count`.
    _REFERENCE_CONSTRAINTS = 5_579

    @property
    def size_bytes(self) -> int:
        if self.num_constraints is None:
            return PROVER_KEY_SIZE_BYTES
        scale = self.num_constraints / self._REFERENCE_CONSTRAINTS
        return max(1, int(PROVER_KEY_SIZE_BYTES * scale))


def trusted_setup(
    circuit_id: str,
    num_public_inputs: int,
    num_constraints: Optional[int] = None,
    seed: Optional[bytes] = None,
) -> Tuple[ProvingKey, VerifyingKey]:
    """Run the (simulated) circuit-specific trusted setup.

    ``seed`` fixes the binding secret for deterministic tests; by default
    a fresh random secret is drawn, as a real ceremony would.
    """
    if seed is None:
        binding_key = secrets.token_bytes(32)
    else:
        binding_key = hashlib.sha256(b"srs|" + seed).digest()
    vk = VerifyingKey(
        circuit_id=circuit_id,
        binding_key=binding_key,
        num_public_inputs=num_public_inputs,
    )
    return ProvingKey(verifying_key=vk, num_constraints=num_constraints), vk


def prove(
    proving_key: ProvingKey,
    statement: Statement,
    mode: str = "native",
    rng=None,
) -> Proof:
    """Produce a proof for ``statement``; raises on an invalid witness.

    ``mode="native"`` runs the statement's direct relation check (fast
    path for large simulations); ``mode="r1cs"`` synthesises the full
    constraint system and checks satisfaction constraint by constraint.
    """
    vk = proving_key.verifying_key
    if mode == "native":
        if not statement.check_witness():
            raise ProofError("witness does not satisfy the relation")
    elif mode == "r1cs":
        cs = statement.synthesize()  # synthesis itself enforces constraints
        if not cs.is_satisfied():
            raise ProofError("R1CS assignment is unsatisfied")
        expected = tuple(statement.public_inputs())
        if cs.public_inputs() != expected:
            raise ProofError("R1CS public inputs disagree with the statement")
    else:
        raise ProofError(f"unknown proving mode {mode!r}")

    public = statement.public_inputs()
    if len(public) != vk.num_public_inputs:
        raise ProofError(
            f"statement has {len(public)} public inputs, "
            f"circuit expects {vk.num_public_inputs}"
        )
    if rng is None:
        randomness = secrets.token_bytes(32)
    else:
        randomness = rng.randrange(1 << 256).to_bytes(32, "big")
    # pi_a / pi_b are random group elements in real Groth16 (the r and s
    # blinding factors make proofs unlinkable); we model them as hashes
    # of fresh randomness so that repeated proofs of the same statement
    # are distinct and witness-independent.
    pi_a = hashlib.sha256(b"pi_a|" + randomness).digest()
    pi_b = hashlib.sha512(b"pi_b|" + randomness).digest()
    pi_c = vk._binding(pi_a, pi_b, public)
    return Proof(pi_a=pi_a, pi_b=pi_b, pi_c=pi_c)


def verify(
    verifying_key: VerifyingKey,
    proof: Proof,
    public_inputs: Sequence[Fr],
) -> bool:
    """Check ``proof`` against ``public_inputs``.

    Constant-time in the group size: the work is one MAC over the fixed
    number of public inputs, mirroring Groth16's fixed pairing count.
    """
    if len(public_inputs) != verifying_key.num_public_inputs:
        return False
    expected = verifying_key._binding(proof.pi_a, proof.pi_b, public_inputs)
    return hmac.compare_digest(expected, proof.pi_c)
