"""Tree-of-trees membership registry (sharded canonical tree).

A depth-``d`` membership tree splits exactly into ``2^t`` fixed-capacity
sub-trees of depth ``s`` (``d = s + t``) under a top-level root-of-roots
of depth ``t``: leaf ``i`` lives at slot ``i & (2^s - 1)`` of sub-tree
``i >> s``, and the top tree's leaf ``k`` is sub-tree ``k``'s root. This
is a *decomposition* of the flat tree, not an approximation — every node
of the sharded form equals the corresponding node of the flat tree, so
the root is bit-identical at matched capacity (the property suite in
``tests/crypto/test_merkle_forest.py`` pins this under random
registration/slash interleavings).

What the decomposition buys:

* **Genesis bulk build.** Registering ``N`` identities one by one costs
  ``N x d`` hashes plus ``N x d`` undo-journal tuples and ``N`` stored
  roots. :meth:`CanonicalShardedTree.apply_batch` at version 0 builds
  sub-trees bottom-up instead — ~2 hashes per leaf, no journal, no
  per-version roots — and only the last ``root_window`` insertions go
  through the normal journaled path so the resulting root window is
  byte-identical to the one-by-one replay.

* **Memory flatness.** Sub-tree interiors are *lazy*: after a bulk
  build only the leaf lists, the sub-roots and the (tiny) top tree are
  held. A sub-tree's interior is materialised on first write or proof
  inside it (~``2^s`` hashes, once), so steady-state node storage
  scales with the *active* slice of the membership, not its total size.

* **O(depth_sub + depth_top) incremental registration.** An insert
  hashes ``s`` levels inside one sub-tree plus ``t`` levels of the top
  tree — which for the equivalent flat tree is exactly ``d`` hashes;
  the sharding never makes the incremental path worse, while keeping
  the two wins above.

:class:`CanonicalShardedTree` is a drop-in for
:class:`~repro.crypto.merkle_shared.CanonicalMerkleTree` behind
:class:`~repro.crypto.merkle_shared.SharedMerkleView` — same versioned
reads, undo journal, fork and dedup surface. Versions inside a
compacted genesis range are the one exception: their roots and node
snapshots were never stored, so reading them raises
:class:`~repro.errors.MerkleError` instead of silently recomputing.

:class:`TwoLevelProof` is the sharded proof shape: a sub-tree path to
the sub-root plus a top path from the sub-root to the root.
``flatten()`` recovers the flat :class:`~repro.crypto.merkle.MerkleProof`
(concatenation of the two paths), so verifiers are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import MerkleError
from .field import Fr
from .hashing import hash2_int
from .merkle import MerkleProof, zero_hashes_int

Event = Tuple


@dataclass(frozen=True)
class TwoLevelProof:
    """A membership proof split at the sub-tree boundary.

    ``sub`` authenticates the leaf inside sub-tree ``sub_index`` (its
    computed root is ``sub_root``); ``top`` authenticates ``sub_root``
    as leaf ``sub_index`` of the root-of-roots. Flattening the two
    paths yields exactly the flat-tree proof for the same leaf.
    """

    sub: MerkleProof
    sub_root: Fr
    sub_index: int
    top: MerkleProof

    @property
    def depth(self) -> int:
        return self.sub.depth + self.top.depth

    @property
    def leaf_index(self) -> int:
        """Global leaf index: (sub_index << sub_depth) | local index."""
        return (self.sub_index << self.sub.depth) | self.sub.leaf_index

    @classmethod
    def from_flat(cls, proof: MerkleProof, sub_depth: int) -> "TwoLevelProof":
        """Split a flat proof at ``sub_depth``; pure — no tree access."""
        if not 0 < sub_depth < proof.depth:
            raise MerkleError(
                f"sub depth {sub_depth} outside a depth-{proof.depth} proof"
            )
        sub = MerkleProof(
            leaf=proof.leaf,
            leaf_index=proof.leaf_index & ((1 << sub_depth) - 1),
            siblings=proof.siblings[:sub_depth],
            path_bits=proof.path_bits[:sub_depth],
        )
        sub_root = sub.compute_root()
        sub_index = proof.leaf_index >> sub_depth
        top = MerkleProof(
            leaf=sub_root,
            leaf_index=sub_index,
            siblings=proof.siblings[sub_depth:],
            path_bits=proof.path_bits[sub_depth:],
        )
        return cls(sub=sub, sub_root=sub_root, sub_index=sub_index, top=top)

    def flatten(self) -> MerkleProof:
        """The equivalent flat-tree proof (path concatenation)."""
        return MerkleProof(
            leaf=self.sub.leaf,
            leaf_index=self.leaf_index,
            siblings=self.sub.siblings + self.top.siblings,
            path_bits=self.sub.path_bits + self.top.path_bits,
        )

    def verify(self, root: Fr) -> bool:
        """Both hops hold: leaf -> sub_root and sub_root -> root."""
        return (
            self.sub.compute_root() == self.sub_root
            and self.top.leaf == self.sub_root
            and self.top.verify(root)
        )


class CanonicalShardedTree:
    """Sharded drop-in for :class:`CanonicalMerkleTree`.

    Same contract — single-writer :meth:`apply`, versioned reads, undo
    journal, ``events_deduped``/``forks`` counters — with leaves held in
    per-sub-tree lists, interiors materialised lazily, and a batch path
    that compacts the genesis prefix (see the module docstring).
    """

    def __init__(self, depth: int, sub_depth: int) -> None:
        if depth < 2:
            raise MerkleError("sharded tree depth must be at least 2")
        if not 0 < sub_depth < depth:
            raise MerkleError(
                f"sub-tree depth must satisfy 0 < {sub_depth} < {depth}"
            )
        self.depth = depth
        self.sub_depth = sub_depth
        self.top_depth = depth - sub_depth
        self.capacity = 1 << depth
        self.sub_capacity = 1 << sub_depth
        self._sub_mask = self.sub_capacity - 1
        self._zeros = zero_hashes_int(depth)
        #: Leaf values per sub-tree, densely packed (sub k holds global
        #: leaves [k << sub_depth, (k+1) << sub_depth)).
        self._sub_leaves: List[List[int]] = []
        #: Root of sub-tree k (parallel to _sub_leaves).
        self._sub_roots: List[int] = []
        #: Materialised sub-tree interior nodes, *global* (height, index)
        #: coordinates, heights 1 .. sub_depth-1.
        self._interior: Dict[Tuple[int, int], int] = {}
        self._materialized: Set[int] = set()
        #: Top-tree nodes, global coordinates, heights sub_depth+1 .. depth.
        self._top_nodes: Dict[Tuple[int, int], int] = {}
        #: Post-genesis undo journal, same semantics as the flat
        #: canonical tree: (height, index) -> [(version, value before)].
        self._journal: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        #: Versions 1 .. _genesis_version were compacted by a genesis
        #: batch: no per-version events, roots or journal entries exist
        #: for them (they are reconstructed or refused on access).
        self._genesis_version = 0
        #: Post-genesis events; _events[i] moved the head from version
        #: _genesis_version + i to _genesis_version + i + 1.
        self._events: List[Event] = []
        #: _roots[i] / _leaf_counts[i] = state at _genesis_version + i.
        self._roots: List[int] = [self._zeros[depth]]
        self._leaf_counts: List[int] = [0]
        self._leaf_history: Dict[int, List[Tuple[int, int]]] = {}
        #: Lazy value -> ascending genesis indices (as of the genesis
        #: version); built on first find_leaf over a compacted prefix.
        self._genesis_slots: Optional[Dict[int, List[int]]] = None
        self.events_deduped = 0
        self.forks = 0

    # -- head bookkeeping ---------------------------------------------------

    @property
    def version(self) -> int:
        return self._genesis_version + len(self._events)

    def event_at(self, version: int) -> Event:
        """The event that moved the head from ``version`` to ``version+1``.

        Genesis-compacted versions are all inserts; the inserted value
        is recovered from the leaf state at the genesis version (the
        journal preserves it even if the slot was overwritten later).
        """
        if version < self._genesis_version:
            return ("insert", self.node_at(0, version, self._genesis_version))
        return self._events[version - self._genesis_version]

    def root_at(self, version: int) -> int:
        if version >= self._genesis_version:
            return self._roots[version - self._genesis_version]
        if version == 0:
            return self._zeros[self.depth]
        raise MerkleError(
            f"root at version {version} was compacted by the genesis "
            f"batch (first stored version is {self._genesis_version})"
        )

    def leaf_count_at(self, version: int) -> int:
        if version >= self._genesis_version:
            return self._leaf_counts[version - self._genesis_version]
        return version  # every genesis event is an insert

    def state_digest(self) -> Tuple[int, int, int]:
        return (self.version, self._roots[-1], self._leaf_counts[-1])

    # -- mutation -----------------------------------------------------------

    def apply(self, event: Event) -> Optional[int]:
        """Apply one event at the head; same contract as the flat tree."""
        new_version = self.version + 1
        count = self._leaf_counts[-1]
        if event[0] == "insert":
            index, value = count, event[1]
            count += 1
        else:
            _, index, value = event
        root = self._write_path(index, value, new_version)
        self._events.append(event)
        self._roots.append(root)
        self._leaf_counts.append(count)
        self._leaf_history.setdefault(value, []).append(
            (index, new_version)
        )
        return index if event[0] == "insert" else None

    def apply_batch(
        self, values: Sequence[int], roots_tail: int
    ) -> Tuple[int, List[int]]:
        """Insert ``values`` in order; returns (first index, tail roots).

        At version 0 the prefix before the last ``roots_tail`` leaves is
        *compacted*: sub-trees are built bottom-up (~2 hashes/leaf, no
        journal, no per-version roots), then the tail goes through the
        normal journaled path — so the returned roots, and therefore a
        replica's root window, are byte-identical to a one-by-one
        replay. Past version 0 every insert is journaled as usual.

        The tail holds the roots of the last ``min(roots_tail, n)``
        versions, oldest first.
        """
        n = len(values)
        first = self._leaf_counts[-1]
        if n == 0:
            return first, []
        if first + n > self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        tail_len = min(max(roots_tail, 1), n)
        compact = n - tail_len if self.version == 0 else 0
        for start in range(0, compact, self.sub_capacity):
            stop = min(start + self.sub_capacity, compact)
            chunk = [int(v) for v in values[start:stop]]
            self._sub_leaves.append(chunk)
            self._sub_roots.append(self._fold_sub_root(chunk))
        if compact:
            self._genesis_version = compact
            self._roots = [self._rebuild_top()]
            self._leaf_counts = [compact]
        tail_roots = []
        for value in values[compact:]:
            self.apply(("insert", int(value)))
            tail_roots.append(self._roots[-1])
        return first, tail_roots[-tail_len:]

    def _fold_sub_root(self, leaves: List[int]) -> int:
        """Root of one sub-tree, bottom-up, storing no interior nodes."""
        level = leaves
        zeros = self._zeros
        for height in range(1, self.sub_depth + 1):
            zero = zeros[height - 1]
            level = [
                hash2_int(
                    level[2 * j],
                    level[2 * j + 1] if 2 * j + 1 < len(level) else zero,
                )
                for j in range((len(level) + 1) // 2)
            ]
        return level[0] if level else zeros[self.sub_depth]

    def _rebuild_top(self) -> int:
        """(Re)build the whole top tree from the sub-roots; returns root."""
        level = list(self._sub_roots)
        zeros = self._zeros
        top = self._top_nodes
        for height in range(self.sub_depth + 1, self.depth + 1):
            zero = zeros[height - 1]
            nxt = []
            for j in range((len(level) + 1) // 2):
                node = hash2_int(
                    level[2 * j],
                    level[2 * j + 1] if 2 * j + 1 < len(level) else zero,
                )
                nxt.append(node)
                top[(height, j)] = node
            level = nxt or [zeros[height]]
        return level[0]

    def _materialize(self, k: int) -> None:
        """Build sub-tree ``k``'s interior nodes from its leaves (once)."""
        if k in self._materialized:
            return
        leaves = self._sub_leaves[k]
        zeros = self._zeros
        interior = self._interior
        level = leaves
        for height in range(1, self.sub_depth):
            zero = zeros[height - 1]
            base = k << (self.sub_depth - height)
            nxt = []
            for j in range((len(level) + 1) // 2):
                node = hash2_int(
                    level[2 * j],
                    level[2 * j + 1] if 2 * j + 1 < len(level) else zero,
                )
                nxt.append(node)
                interior[(height, base + j)] = node
            level = nxt
        self._materialized.add(k)

    def _node_head(self, height: int, index: int) -> int:
        """Current (head) digest of node (height, index)."""
        if height == 0:
            k = index >> self.sub_depth
            if k < len(self._sub_leaves):
                leaves = self._sub_leaves[k]
                local = index & self._sub_mask
                if local < len(leaves):
                    return leaves[local]
            return 0
        if height < self.sub_depth:
            k = index >> (self.sub_depth - height)
            if k < len(self._sub_leaves) and self._sub_leaves[k]:
                self._materialize(k)
                return self._interior.get(
                    (height, index), self._zeros[height]
                )
            return self._zeros[height]
        if height == self.sub_depth:
            if index < len(self._sub_roots):
                return self._sub_roots[index]
            return self._zeros[height]
        return self._top_nodes.get((height, index), self._zeros[height])

    def _head_set(self, height: int, index: int, value: int) -> None:
        if height < self.sub_depth:
            self._interior[(height, index)] = value
        elif height == self.sub_depth:
            self._sub_roots[index] = value
        else:
            self._top_nodes[(height, index)] = value

    def _write_path(self, index: int, value: int, new_version: int) -> int:
        """Journaled path rehash — the flat tree's fold, routed through
        the sub-tree / top-tree stores. Identical hash order, so the
        resulting nodes equal the flat tree's bit for bit."""
        journal = self._journal
        k = index >> self.sub_depth
        local = index & self._sub_mask
        while len(self._sub_leaves) <= k:
            self._sub_leaves.append([])
            self._sub_roots.append(self._zeros[self.sub_depth])
            self._materialized.add(len(self._sub_leaves) - 1)
        self._materialize(k)
        leaves = self._sub_leaves[k]
        key = (0, index)
        prev = leaves[local] if local < len(leaves) else 0
        journal.setdefault(key, []).append((new_version, prev))
        if local < len(leaves):
            leaves[local] = value
        elif local == len(leaves):
            leaves.append(value)
        else:
            raise MerkleError(
                f"non-contiguous write at leaf {index} (sub-tree {k} "
                f"holds {len(leaves)} leaves)"
            )
        node = value
        node_index = index
        for height in range(1, self.depth + 1):
            sibling = self._node_head(height - 1, node_index ^ 1)
            if node_index & 1:
                node = hash2_int(sibling, node)
            else:
                node = hash2_int(node, sibling)
            node_index >>= 1
            key = (height, node_index)
            journal.setdefault(key, []).append(
                (new_version, self._node_head(height, node_index))
            )
            self._head_set(height, node_index, node)
        return node

    # -- versioned reads -----------------------------------------------------

    def node_at(self, height: int, index: int, version: int) -> int:
        """Digest of node (height, index) as of ``version``.

        Genesis-compacted intermediate versions were never journaled
        and cannot be read back; version 0 (the empty tree) always can.
        """
        if version < self._genesis_version:
            if version == 0:
                return self._zeros[height]
            raise MerkleError(
                f"node history at version {version} was compacted by "
                f"the genesis batch"
            )
        key = (height, index)
        if version < self.version:
            entries = self._journal.get(key)
            if entries:
                lo, hi = 0, len(entries)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if entries[mid][0] <= version:
                        lo = mid + 1
                    else:
                        hi = mid
                if lo < len(entries):
                    return entries[lo][1]
        return self._node_head(height, index)

    def _genesis_slot_map(self) -> Dict[int, List[int]]:
        """value -> ascending genesis indices, as of the genesis version
        (reads through the journal, so later overwrites don't hide the
        original values). Built lazily, once — O(genesis size)."""
        slots = self._genesis_slots
        if slots is None:
            slots = self._genesis_slots = {}
            for index in range(self._genesis_version):
                value = self.node_at(0, index, self._genesis_version)
                slots.setdefault(value, []).append(index)
        return slots

    def find_leaf_at(self, value: int, version: int) -> Optional[int]:
        """Lowest index holding ``value`` as of ``version`` (or None)."""
        if 0 < version < self._genesis_version:
            raise MerkleError(
                f"leaf lookup at compacted version {version}"
            )
        best: Optional[int] = None
        if self._genesis_version and version:
            for index in self._genesis_slot_map().get(value, ()):
                if self.node_at(0, index, version) == value:
                    best = index
                    break
        for index, written in self._leaf_history.get(value, ()):
            if written <= version and (best is None or index < best):
                if self.node_at(0, index, version) == value:
                    best = index
        return best

    def leaf_slots_at(self, version: int) -> Dict[int, List[int]]:
        """value -> ascending indices snapshot (fork bootstrap)."""
        if 0 < version < self._genesis_version:
            raise MerkleError(
                f"leaf snapshot at compacted version {version}"
            )
        slots: Dict[int, List[int]] = {}
        for index in range(self.leaf_count_at(version)):
            slots.setdefault(self.node_at(0, index, version), []).append(
                index
            )
        return slots

    def storage_bytes(self) -> int:
        """Bytes of live head node storage (32 B per node)."""
        nodes = (
            sum(len(leaves) for leaves in self._sub_leaves)
            + len(self._sub_roots)
            + len(self._interior)
            + len(self._top_nodes)
        )
        return 32 * nodes

    @property
    def materialized_subtrees(self) -> int:
        """Sub-trees whose interiors are held in memory (stat)."""
        return len(self._materialized)

    def materialized_subtree_indices(self) -> FrozenSet[int]:
        """*Which* sub-tree interiors are built (not just how many).

        Index sets from independently event-sourced stores — parallel
        workers each holding a roster slice — union to the single-store
        set, so equivalence checks compare these rather than the
        per-partition counts."""
        return frozenset(self._materialized)

    @property
    def genesis_version(self) -> int:
        """Number of leading versions compacted by the genesis batch."""
        return self._genesis_version
