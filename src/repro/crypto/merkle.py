"""Fixed-depth incremental Merkle tree with full node storage.

This is the *naive* membership-tree store the paper quotes 67 MB for at
depth 20: every internal node of the fixed-shape tree is materialised (or
defaulted to a precomputed zero-subtree hash). It supports:

* append-only insertion of identity commitments (leaves),
* leaf overwrite (member deletion sets the leaf back to zero),
* authentication-path extraction for any leaf (needed by provers),
* root queries and proof verification.

The storage-optimized variant from reference [9] of the paper lives in
:mod:`repro.crypto.merkle_optimized`; both produce identical roots, which
a property test asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MerkleError
from .field import Fr
from .hashing import hash2


def zero_hashes(depth: int) -> List[Fr]:
    """Zero-subtree digests ``z[0] = 0``, ``z[i+1] = H(z[i], z[i])``.

    ``z[i]`` is the root of an empty subtree of height ``i``.
    """
    zeros = [Fr.zero()]
    for _ in range(depth):
        zeros.append(hash2(zeros[-1], zeros[-1]))
    return zeros


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf.

    ``siblings[i]`` is the sibling digest at height ``i`` and
    ``path_bits[i]`` is 1 when the leaf-side node is the *right* child at
    that height (i.e. bit ``i`` of the leaf index).
    """

    leaf: Fr
    leaf_index: int
    siblings: Tuple[Fr, ...]
    path_bits: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def compute_root(self) -> Fr:
        """Fold the path back up to the root."""
        node = self.leaf
        for bit, sibling in zip(self.path_bits, self.siblings):
            if bit:
                node = hash2(sibling, node)
            else:
                node = hash2(node, sibling)
        return node

    def verify(self, root: Fr) -> bool:
        """Check this path authenticates ``leaf`` under ``root``."""
        return self.compute_root() == root


class MerkleTree:
    """Append-only fixed-depth Merkle tree storing every touched node.

    Nodes are kept in a dict keyed by ``(height, index)``; untouched
    nodes implicitly hold the zero-subtree digest for their height, so an
    empty tree costs nothing but a fully populated depth-20 tree stores
    2^21 - 1 field elements (~67 MB at 32 B each — the paper's figure).
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise MerkleError("tree depth must be at least 1")
        self.depth = depth
        self.capacity = 1 << depth
        self._zeros = zero_hashes(depth)
        self._nodes: Dict[Tuple[int, int], Fr] = {}
        self._next_index = 0

    # -- node access --------------------------------------------------------

    def _get_node(self, height: int, index: int) -> Fr:
        return self._nodes.get((height, index), self._zeros[height])

    @property
    def root(self) -> Fr:
        """Digest of the whole tree."""
        return self._get_node(self.depth, 0)

    @property
    def leaf_count(self) -> int:
        """Number of slots ever assigned (includes deleted members)."""
        return self._next_index

    def leaf(self, index: int) -> Fr:
        """Current value of leaf ``index`` (zero if never set / deleted)."""
        self._check_index(index)
        return self._get_node(0, index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise MerkleError(
                f"leaf index {index} out of range for depth-{self.depth} tree"
            )

    # -- mutation -------------------------------------------------------------

    def insert(self, leaf: Fr) -> int:
        """Append ``leaf`` at the next free slot; returns its index."""
        if self._next_index >= self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        index = self._next_index
        self._set_leaf(index, leaf)
        self._next_index += 1
        return index

    def clone(self) -> "MerkleTree":
        """An independent copy with identical contents.

        Copying materialised nodes is ~20x cheaper than replaying the
        insertions that produced them (no hashing); the zero-subtree
        table is immutable and shared.
        """
        other = MerkleTree.__new__(MerkleTree)
        other.depth = self.depth
        other.capacity = self.capacity
        other._zeros = self._zeros
        other._nodes = dict(self._nodes)
        other._next_index = self._next_index
        return other

    def update(self, index: int, leaf: Fr) -> None:
        """Overwrite an existing slot (member deletion writes zero)."""
        self._check_index(index)
        if index >= self._next_index:
            raise MerkleError(f"leaf {index} has not been inserted yet")
        self._set_leaf(index, leaf)

    def delete(self, index: int) -> None:
        """Reset slot ``index`` to the zero leaf."""
        self.update(index, Fr.zero())

    def _set_leaf(self, index: int, leaf: Fr) -> None:
        self._nodes[(0, index)] = Fr(leaf)
        node_index = index
        for height in range(1, self.depth + 1):
            node_index //= 2
            left = self._get_node(height - 1, 2 * node_index)
            right = self._get_node(height - 1, 2 * node_index + 1)
            self._nodes[(height, node_index)] = hash2(left, right)

    # -- proofs -----------------------------------------------------------------

    def proof(self, index: int) -> MerkleProof:
        """Authentication path for leaf ``index``."""
        self._check_index(index)
        siblings: List[Fr] = []
        bits: List[int] = []
        node_index = index
        for height in range(self.depth):
            bit = node_index & 1
            sibling_index = node_index ^ 1
            siblings.append(self._get_node(height, sibling_index))
            bits.append(bit)
            node_index //= 2
        return MerkleProof(
            leaf=self.leaf(index),
            leaf_index=index,
            siblings=tuple(siblings),
            path_bits=tuple(bits),
        )

    # -- storage accounting --------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes required to persist every materialised node (32 B each)."""
        return 32 * len(self._nodes)

    def full_storage_bytes(self) -> int:
        """Bytes for a *fully materialised* depth-d tree: (2^(d+1)-1) * 32.

        This is the figure the paper quotes (67 MB at depth 20).
        """
        return 32 * ((1 << (self.depth + 1)) - 1)

    def leaves(self) -> Sequence[Fr]:
        """All assigned leaf values, in insertion order."""
        return [self.leaf(i) for i in range(self._next_index)]

    def find_leaf(self, leaf: Fr) -> Optional[int]:
        """Index of the first occurrence of ``leaf`` among assigned slots."""
        target = Fr(leaf)
        for i in range(self._next_index):
            if self.leaf(i) == target:
                return i
        return None
