"""Fixed-depth incremental Merkle tree with full node storage.

This is the *naive* membership-tree store the paper quotes 67 MB for at
depth 20: every internal node of the fixed-shape tree is materialised (or
defaulted to a precomputed zero-subtree hash). It supports:

* append-only insertion of identity commitments (leaves),
* leaf overwrite (member deletion sets the leaf back to zero),
* authentication-path extraction for any leaf (needed by provers),
* root queries and proof verification,
* O(1) commitment-to-index lookup (``find_leaf``).

Internally the tree is int-native: nodes are canonical integers hashed
through :func:`repro.crypto.hashing.hash2_int`, so a depth-20 path
update allocates no :class:`Fr` objects. The public API still speaks
``Fr``.

The storage-optimized variant from reference [9] of the paper lives in
:mod:`repro.crypto.merkle_optimized`, and the shared copy-on-write
store (one canonical tree per deployment domain) in
:mod:`repro.crypto.merkle_shared`; all produce identical roots, which
property tests assert.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import MerkleError
from .field import Fr
from .hashing import get_hash_backend, hash2_int

#: (backend name, depth) -> immutable zero-subtree digest table. Keyed
#: by backend so :func:`repro.crypto.hashing.set_hash_backend` needs no
#: explicit invalidation hook — a switched backend simply misses into
#: its own entries.
_ZERO_CACHE: Dict[Tuple[str, int], Tuple[int, ...]] = {}


def zero_hashes_int(depth: int) -> Tuple[int, ...]:
    """Int-native zero-subtree digests, cached per active hash backend.

    Every tree of a given depth shares one immutable table; before this
    cache the table was recomputed for every tree, i.e. once per
    peer x topic at network build time.
    """
    key = (get_hash_backend(), depth)
    cached = _ZERO_CACHE.get(key)
    if cached is None:
        zeros = [0]
        for _ in range(depth):
            zeros.append(hash2_int(zeros[-1], zeros[-1]))
        cached = _ZERO_CACHE[key] = tuple(zeros)
    return cached


def zero_hashes(depth: int) -> List[Fr]:
    """Zero-subtree digests ``z[0] = 0``, ``z[i+1] = H(z[i], z[i])``.

    ``z[i]`` is the root of an empty subtree of height ``i``.
    """
    return [Fr(z) for z in zero_hashes_int(depth)]


@dataclass(frozen=True)
class MerkleProof:
    """Authentication path for one leaf.

    ``siblings[i]`` is the sibling digest at height ``i`` and
    ``path_bits[i]`` is 1 when the leaf-side node is the *right* child at
    that height (i.e. bit ``i`` of the leaf index).
    """

    leaf: Fr
    leaf_index: int
    siblings: Tuple[Fr, ...]
    path_bits: Tuple[int, ...]

    @property
    def depth(self) -> int:
        return len(self.siblings)

    def compute_root(self) -> Fr:
        """Fold the path back up to the root."""
        node = Fr(self.leaf)._value
        for bit, sibling in zip(self.path_bits, self.siblings):
            other = Fr(sibling)._value
            if bit:
                node = hash2_int(other, node)
            else:
                node = hash2_int(node, other)
        return Fr(node)

    def verify(self, root: Fr) -> bool:
        """Check this path authenticates ``leaf`` under ``root``."""
        return self.compute_root() == root


class MerkleTree:
    """Append-only fixed-depth Merkle tree storing every touched node.

    Nodes are kept in a dict keyed by ``(height, index)``; untouched
    nodes implicitly hold the zero-subtree digest for their height, so an
    empty tree costs nothing but a fully populated depth-20 tree stores
    2^21 - 1 field elements (~67 MB at 32 B each — the paper's figure).
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise MerkleError("tree depth must be at least 1")
        self.depth = depth
        self.capacity = 1 << depth
        self._zeros = zero_hashes_int(depth)
        self._nodes: Dict[Tuple[int, int], int] = {}
        self._next_index = 0
        #: leaf value -> ascending indices currently holding it; keeps
        #: ``find_leaf`` O(1) instead of a linear scan over members.
        self._leaf_slots: Dict[int, List[int]] = {}

    # -- node access --------------------------------------------------------

    def _get_node(self, height: int, index: int) -> int:
        return self._nodes.get((height, index), self._zeros[height])

    @property
    def root(self) -> Fr:
        """Digest of the whole tree."""
        return Fr(self._get_node(self.depth, 0))

    @property
    def leaf_count(self) -> int:
        """Number of slots ever assigned (includes deleted members)."""
        return self._next_index

    def leaf(self, index: int) -> Fr:
        """Current value of leaf ``index`` (zero if never set / deleted)."""
        self._check_index(index)
        return Fr(self._get_node(0, index))

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise MerkleError(
                f"leaf index {index} out of range for depth-{self.depth} tree"
            )

    # -- mutation -------------------------------------------------------------

    def insert(self, leaf: Fr) -> int:
        """Append ``leaf`` at the next free slot; returns its index."""
        if self._next_index >= self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        index = self._next_index
        value = Fr(leaf)._value
        self._index_leaf(value, index)
        self._set_leaf(index, value)
        self._next_index += 1
        return index

    def clone(self) -> "MerkleTree":
        """An independent copy with identical contents.

        Copying materialised nodes is ~20x cheaper than replaying the
        insertions that produced them (no hashing); the zero-subtree
        table is immutable and shared.
        """
        other = MerkleTree.__new__(MerkleTree)
        other.depth = self.depth
        other.capacity = self.capacity
        other._zeros = self._zeros
        other._nodes = dict(self._nodes)
        other._next_index = self._next_index
        other._leaf_slots = {
            value: list(slots) for value, slots in self._leaf_slots.items()
        }
        return other

    def update(self, index: int, leaf: Fr) -> None:
        """Overwrite an existing slot (member deletion writes zero)."""
        self._check_index(index)
        if index >= self._next_index:
            raise MerkleError(f"leaf {index} has not been inserted yet")
        value = Fr(leaf)._value
        old = self._get_node(0, index)
        if old != value:
            self._unindex_leaf(old, index)
            self._index_leaf(value, index)
        self._set_leaf(index, value)

    def delete(self, index: int) -> None:
        """Reset slot ``index`` to the zero leaf."""
        self.update(index, Fr.zero())

    # For an *independent* replica there is no shared structure to
    # protect, so membership events from the synced log are plain
    # mutations; the aliases keep LocalGroup agnostic of its tree type
    # (SharedMerkleView distinguishes the two paths).
    synced_insert = insert
    synced_update = update

    def synced_insert_batch(
        self, leaves: Sequence[Fr], roots_tail: int
    ) -> Tuple[int, List[Fr]]:
        """Apply one batch membership event to an independent replica.

        A plain insert loop — with no shared structure there is nothing
        to compact. Returns ``(first index, roots of the last
        min(roots_tail, n) states, oldest first)``, matching
        :meth:`SharedMerkleView.synced_insert_batch` so
        :class:`~repro.rln.membership.LocalGroup` stays agnostic of its
        tree type.
        """
        first = self._next_index
        n = len(leaves)
        if self._next_index + n > self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        need_from = n - min(max(roots_tail, 1), n) if n else 0
        roots: List[Fr] = []
        for j, leaf in enumerate(leaves):
            self.insert(leaf)
            if j >= need_from:
                roots.append(self.root)
        return first, roots

    def _index_leaf(self, value: int, index: int) -> None:
        slots = self._leaf_slots.get(value)
        if slots is None:
            self._leaf_slots[value] = [index]
        else:
            insort(slots, index)

    def _unindex_leaf(self, value: int, index: int) -> None:
        slots = self._leaf_slots.get(value)
        if slots is None:
            return
        try:
            slots.remove(index)
        except ValueError:
            return
        if not slots:
            del self._leaf_slots[value]

    def _set_leaf(self, index: int, value: int) -> None:
        nodes = self._nodes
        zeros = self._zeros
        nodes[(0, index)] = value
        node = value
        node_index = index
        for height in range(1, self.depth + 1):
            sibling = nodes.get(
                (height - 1, node_index ^ 1), zeros[height - 1]
            )
            if node_index & 1:
                node = hash2_int(sibling, node)
            else:
                node = hash2_int(node, sibling)
            node_index >>= 1
            nodes[(height, node_index)] = node

    # -- proofs -----------------------------------------------------------------

    def proof(self, index: int) -> MerkleProof:
        """Authentication path for leaf ``index``."""
        self._check_index(index)
        siblings: List[Fr] = []
        bits: List[int] = []
        node_index = index
        for height in range(self.depth):
            bits.append(node_index & 1)
            siblings.append(Fr(self._get_node(height, node_index ^ 1)))
            node_index >>= 1
        return MerkleProof(
            leaf=self.leaf(index),
            leaf_index=index,
            siblings=tuple(siblings),
            path_bits=tuple(bits),
        )

    # -- storage accounting --------------------------------------------------

    def storage_bytes(self) -> int:
        """Bytes required to persist every materialised node (32 B each)."""
        return 32 * len(self._nodes)

    def full_storage_bytes(self) -> int:
        """Bytes for a *fully materialised* depth-d tree: (2^(d+1)-1) * 32.

        This is the figure the paper quotes (67 MB at depth 20).
        """
        return 32 * ((1 << (self.depth + 1)) - 1)

    def leaves(self) -> Sequence[Fr]:
        """All assigned leaf values, in insertion order."""
        return [self.leaf(i) for i in range(self._next_index)]

    def find_leaf(self, leaf: Fr) -> Optional[int]:
        """Index of the first occurrence of ``leaf`` among assigned slots."""
        slots = self._leaf_slots.get(Fr(leaf)._value)
        return slots[0] if slots else None
