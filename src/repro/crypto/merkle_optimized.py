"""Frontier-only Merkle tree — the storage optimization of paper ref [9].

Reference [9] of the paper ("Optimization of Merkle tree storage",
vacp2p/research) observes that an *append-only* membership tree can be
maintained with only ``depth`` stored digests: the "frontier" of filled
left siblings, exactly as in the well-known incremental Merkle tree used
by Tornado Cash / Semaphore. The paper quotes the resulting saving at
depth 20: 67 MB (full node store) down to 0.128 KB (4 x 32 B frontier
words at the quoted parameterisation; our frontier stores ``depth``
words, i.e. 0.64 KB at depth 20 — same order, see EXPERIMENTS.md).

The trade-off is that the frontier tree supports **insertion and root
queries only** — no arbitrary updates and no proof extraction. That is
sufficient for a *routing-only* peer, which merely needs the current root
to verify membership proofs; publishing peers keep the full tree (or
fetch paths from an archival peer). Both stores produce identical roots
for identical insertion sequences, which property tests assert.
"""

from __future__ import annotations

from typing import List

from ..errors import MerkleError
from .field import Fr
from .hashing import hash2_int
from .merkle import zero_hashes_int


class FrontierMerkleTree:
    """O(depth) storage incremental Merkle tree (insert + root only)."""

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise MerkleError("tree depth must be at least 1")
        self.depth = depth
        self.capacity = 1 << depth
        self._zeros = zero_hashes_int(depth)
        #: ``_frontier[h]`` caches the last *left* node seen at height h.
        self._frontier: List[int] = [0] * depth
        self._next_index = 0
        self._root = self._zeros[depth]

    @property
    def root(self) -> Fr:
        """Digest of the whole tree."""
        return Fr(self._root)

    @property
    def leaf_count(self) -> int:
        return self._next_index

    def insert(self, leaf: Fr) -> int:
        """Append ``leaf``; returns its index. O(depth) time and space."""
        if self._next_index >= self.capacity:
            raise MerkleError(f"tree is full ({self.capacity} leaves)")
        index = self._next_index
        node = Fr(leaf)._value
        node_index = index
        for height in range(self.depth):
            if node_index & 1:
                node = hash2_int(self._frontier[height], node)
            else:
                self._frontier[height] = node
                node = hash2_int(node, self._zeros[height])
            node_index //= 2
        self._root = node
        self._next_index += 1
        return index

    def storage_bytes(self) -> int:
        """Persistent bytes: the frontier plus the root (32 B words)."""
        return 32 * (self.depth + 1)
