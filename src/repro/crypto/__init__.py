"""Cryptographic substrates: field, hashes, trees, sharing, zkSNARKs."""

from .field import Fr, fr_product, fr_sum
from .hashing import (
    available_backends,
    get_hash_backend,
    hash1,
    hash1_int,
    hash2,
    hash2_int,
    hash_bytes_to_field,
    hash_call_count,
    set_hash_backend,
)
from .keys import IdentityCommitment, IdentitySecret, MembershipKeyPair
from .merkle import MerkleProof, MerkleTree, zero_hashes, zero_hashes_int
from .merkle_optimized import FrontierMerkleTree
from .merkle_shared import CanonicalMerkleTree, SharedMerkleView
from .poseidon import poseidon_hash, poseidon_hash1, poseidon_hash2
from .shamir import (
    Share,
    evaluate_polynomial,
    make_shares,
    reconstruct_secret,
    recover_secret_from_double_signal,
    rln_line_coefficient,
    rln_share,
)

__all__ = [
    "Fr",
    "fr_sum",
    "fr_product",
    "hash1",
    "hash2",
    "hash1_int",
    "hash2_int",
    "hash_call_count",
    "hash_bytes_to_field",
    "set_hash_backend",
    "get_hash_backend",
    "available_backends",
    "IdentitySecret",
    "IdentityCommitment",
    "MembershipKeyPair",
    "MerkleTree",
    "MerkleProof",
    "FrontierMerkleTree",
    "CanonicalMerkleTree",
    "SharedMerkleView",
    "zero_hashes",
    "zero_hashes_int",
    "poseidon_hash",
    "poseidon_hash1",
    "poseidon_hash2",
    "Share",
    "make_shares",
    "evaluate_polynomial",
    "reconstruct_secret",
    "rln_line_coefficient",
    "rln_share",
    "recover_secret_from_double_signal",
]
