"""Write-ahead SQLite state store backing a watchtower service.

Event-sourcing discipline: the service derives *all* of its state from
the chain event log plus the signals it relayed, and everything it
derives is persisted here — the committed chain cursor, the first seen
signal per ``(topic, epoch, nullifier)``, slashing evidence with its
lifecycle status, the delegation ledger and the money flows. A restart
therefore needs nothing but this file: it reopens the store, replays
the chain from the committed cursor, reseeds its in-memory nullifier
maps from the persisted signals and resubmits whatever evidence is
still pending — never re-acting on anything already marked done.

Durability boundaries match the simulator's: detection-time writes
(signals, fresh evidence) autocommit as they happen, while one
enforcement tick's effects — events consumed, evidence resolved,
payouts ledgered, cursor advanced — commit atomically via
``begin()``/``commit()``, so a crash between ticks can never observe a
cursor ahead of the state it implies.

Evidence lifecycle::

    pending ──submit──▶ submitted ──receipt ok──▶ confirmed
       │                    └──────receipt revert─▶ lost
       └──member gone before we submitted────────▶ preempted
"""

from __future__ import annotations

import sqlite3
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS signals (
    topic     TEXT    NOT NULL,
    epoch     INTEGER NOT NULL,
    nullifier TEXT    NOT NULL,
    blob      BLOB    NOT NULL,
    PRIMARY KEY (topic, epoch, nullifier)
);
CREATE TABLE IF NOT EXISTS evidence (
    pk          TEXT PRIMARY KEY,
    secret      TEXT NOT NULL,
    epoch       INTEGER NOT NULL,
    topic       TEXT NOT NULL,
    detected_at REAL NOT NULL,
    status      TEXT NOT NULL DEFAULT 'pending',
    tx_hash     INTEGER,
    resolved_at REAL
);
CREATE TABLE IF NOT EXISTS delegations (
    node_id      TEXT PRIMARY KEY,
    account      TEXT NOT NULL,
    fee_wei      INTEGER NOT NULL,
    delegated_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS ledger (
    seq          INTEGER PRIMARY KEY AUTOINCREMENT,
    kind         TEXT NOT NULL,
    counterparty TEXT NOT NULL,
    amount_wei   INTEGER NOT NULL,
    at           REAL NOT NULL
);
"""

#: Evidence rows in these states are done; replaying their chain
#: events again must not (and does not) change anything.
TERMINAL_STATUSES = ("confirmed", "lost", "preempted")


class WatchtowerStore:
    """The persistent half of one watchtower service."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn: Optional[sqlite3.Connection] = None
        self.open()

    # -- connection lifecycle ----------------------------------------------------

    def open(self) -> None:
        """(Re)connect; idempotent on an already-open store."""
        if self._conn is not None:
            return
        # Autocommit mode: single writes land immediately; the explicit
        # BEGIN in :meth:`begin` groups one tick into a transaction.
        conn = sqlite3.connect(self.path, isolation_level=None)
        if self.path != ":memory:":
            conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.executescript(_SCHEMA)
        self._conn = conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    @property
    def is_open(self) -> bool:
        return self._conn is not None

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise SimulationError(
                f"watchtower store {self.path!r} is closed"
            )
        return self._conn

    # -- tick transactions ---------------------------------------------------------

    def begin(self) -> None:
        self.conn.execute("BEGIN")

    def commit(self) -> None:
        self.conn.execute("COMMIT")

    # -- chain cursor ----------------------------------------------------------------

    def cursor(self) -> int:
        """The committed event-log position (next log index to read)."""
        row = self.conn.execute(
            "SELECT value FROM meta WHERE key = 'cursor'"
        ).fetchone()
        return int(row[0]) if row else 0

    def commit_cursor(self, log_index: int) -> None:
        self.conn.execute(
            "INSERT INTO meta (key, value) VALUES ('cursor', ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (str(log_index),),
        )

    # -- seen signals -----------------------------------------------------------------

    def record_signal(
        self, topic: str, epoch: int, nullifier: str, blob: bytes
    ) -> None:
        """Persist the first relayed signal per (topic, epoch, phi) —
        exactly the record the in-memory nullifier map keeps, so a
        restart can detect double-signals against pre-crash traffic."""
        self.conn.execute(
            "INSERT OR IGNORE INTO signals (topic, epoch, nullifier, blob)"
            " VALUES (?, ?, ?, ?)",
            (topic, epoch, nullifier, blob),
        )

    def signals(self) -> List[Tuple[str, bytes]]:
        """All persisted (topic, signal bytes), deterministic order."""
        return self.conn.execute(
            "SELECT topic, blob FROM signals "
            "ORDER BY topic, epoch, nullifier"
        ).fetchall()

    def prune_signals(self, current_epoch: int, thr: int) -> int:
        """Drop signals outside the epoch acceptance window (mirrors
        :meth:`NullifierMap.prune`); returns #rows freed."""
        cur = self.conn.execute(
            "DELETE FROM signals WHERE epoch < ? OR epoch > ?",
            (current_epoch - thr, current_epoch + thr),
        )
        return cur.rowcount

    # -- slashing evidence --------------------------------------------------------------

    def put_evidence(
        self,
        pk: int,
        secret: int,
        epoch: int,
        topic: str,
        detected_at: float,
    ) -> bool:
        """Record newly detected evidence; False if ``pk`` is known."""
        cur = self.conn.execute(
            "INSERT OR IGNORE INTO evidence "
            "(pk, secret, epoch, topic, detected_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (str(pk), str(secret), epoch, topic, detected_at),
        )
        return cur.rowcount > 0

    def evidence_status(self, pk: int) -> Optional[str]:
        row = self.conn.execute(
            "SELECT status FROM evidence WHERE pk = ?", (str(pk),)
        ).fetchone()
        return row[0] if row else None

    def evidence_tx(self, pk: int) -> Optional[int]:
        row = self.conn.execute(
            "SELECT tx_hash FROM evidence WHERE pk = ?", (str(pk),)
        ).fetchone()
        return row[0] if row else None

    def pending_evidence(self) -> List[Tuple[int, int]]:
        """(pk, secret) rows not yet submitted, in detection order
        (pk as the deterministic tie-break)."""
        rows = self.conn.execute(
            "SELECT pk, secret FROM evidence WHERE status = 'pending' "
            "ORDER BY detected_at, pk"
        ).fetchall()
        return [(int(pk), int(secret)) for pk, secret in rows]

    def evidence_pks(self) -> List[int]:
        """Every offender pk this service ever detected."""
        rows = self.conn.execute(
            "SELECT pk FROM evidence ORDER BY pk"
        ).fetchall()
        return [int(pk) for (pk,) in rows]

    def unresolved_evidence(self) -> List[int]:
        """pks with evidence still in flight (pending or submitted)."""
        rows = self.conn.execute(
            "SELECT pk FROM evidence "
            "WHERE status IN ('pending', 'submitted') ORDER BY pk"
        ).fetchall()
        return [int(pk) for (pk,) in rows]

    def mark_submitted(self, pk: int, tx_hash: int) -> None:
        self.conn.execute(
            "UPDATE evidence SET status = 'submitted', tx_hash = ? "
            "WHERE pk = ?",
            (tx_hash, str(pk)),
        )

    def resolve_evidence(
        self, pk: int, status: str, resolved_at: float
    ) -> None:
        if status not in TERMINAL_STATUSES:
            raise SimulationError(
                f"{status!r} is not a terminal evidence status"
            )
        self.conn.execute(
            "UPDATE evidence SET status = ?, resolved_at = ? WHERE pk = ?",
            (status, resolved_at, str(pk)),
        )

    def evidence_counts(self) -> Dict[str, int]:
        """status -> row count (absent statuses omitted)."""
        rows = self.conn.execute(
            "SELECT status, COUNT(*) FROM evidence GROUP BY status"
        ).fetchall()
        return dict(rows)

    # -- delegations ----------------------------------------------------------------------

    def add_delegation(
        self, node_id: str, account: str, fee_wei: int, at: float
    ) -> None:
        self.conn.execute(
            "INSERT INTO delegations (node_id, account, fee_wei, "
            "delegated_at) VALUES (?, ?, ?, ?)",
            (node_id, account, fee_wei, at),
        )

    def delegations(self) -> List[Tuple[str, str]]:
        """(node_id, account) pairs in node-id order — the payout
        distribution order, deterministic across restarts."""
        return self.conn.execute(
            "SELECT node_id, account FROM delegations ORDER BY node_id"
        ).fetchall()

    def delegation_count(self) -> int:
        return self.conn.execute(
            "SELECT COUNT(*) FROM delegations"
        ).fetchone()[0]

    # -- money ledger ------------------------------------------------------------------------

    def add_ledger(
        self, kind: str, counterparty: str, amount_wei: int, at: float
    ) -> None:
        self.conn.execute(
            "INSERT INTO ledger (kind, counterparty, amount_wei, at) "
            "VALUES (?, ?, ?, ?)",
            (kind, counterparty, amount_wei, at),
        )

    def ledger_total(self, kind: str) -> int:
        row = self.conn.execute(
            "SELECT COALESCE(SUM(amount_wei), 0) FROM ledger "
            "WHERE kind = ?",
            (kind,),
        ).fetchone()
        return int(row[0])
