"""The watchtower service: delegated, event-sourced slash enforcement.

A :class:`WatchtowerService` is a first-class network entity next to
the peers: it attaches its own Waku-Relay node to the overlay,
subscribes to the protected topics, and runs the same Section III
validation pipeline a routing peer runs — proof check, epoch window,
nullifier map — but on behalf of *delegating* light peers that turned
their own slash reporting off. Detected double-signals become pending
evidence; an enforcement tick submits the slash transactions and, once
the corresponding ``MemberRemoved`` events confirm, splits the
reporter reward between the service (its ``reward_cut``) and its
delegators (even split, remainder to the service).

The service is event-sourced over the chain log via one persisted
:class:`~repro.eth.cursor.EventCursor` position: ``crash()`` drops
every piece of in-memory state and detaches from the overlay;
``restart()`` rebuilds the membership replica by replaying the full
event log (enforcing only past the committed cursor), reseeds its
nullifier maps from the persisted signals, catches up on events that
fired while it was down, and resubmits evidence still pending —
exactly once per offender, no matter where the crash fell.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.config import ProtocolConfig
from ..core.epoch import EpochTracker
from ..core.nullifier_map import NullifierMap
from ..core.peer import OUTCOME_TO_GOSSIP
from ..core.validator import RlnMessageValidator, ValidationOutcome
from ..crypto.field import Fr
from ..crypto.keys import IdentityCommitment
from ..errors import SimulationError
from ..eth.cursor import EventCursor
from ..rln.membership import LocalGroup
from ..rln.signal import RlnSignal
from ..rln.slashing import SlashingEvidence
from ..rln.verifier import RlnVerifier
from ..waku.message import DEFAULT_PUBSUB_TOPIC, WakuMessage
from ..waku.relay import WakuRelayNode
from .store import WatchtowerStore


def watchtower_dial_plan(net, service_id: str, degree: int) -> List[str]:
    """The neighbours a watchtower dials at (re)start.

    Parallel mode computes the list from the service's own entity
    stream over the full roster: every worker derives the identical
    plan, so the workers that own the dialed peers can mirror the
    build-time link (build-per-worker networks hold no peer objects
    for foreign shards, and a one-sided link would drop every packet).
    Serial mode keeps the historical draw from the shared stream over
    the live peer list, bit for bit.
    """
    if getattr(net, "parallel", False):
        rng = net.simulator.entity_rng(f"wt-dial:{service_id}")
        alive = list(net.roster)
    else:
        rng = net.simulator.rng
        alive = [p.node_id for p in net.peers]
    return rng.sample(alive, min(degree, len(alive)))


class WatchtowerService:
    """One competing watcher in the delegated-enforcement market."""

    def __init__(
        self,
        net,  # WakuRlnRelayNetwork (kept untyped: layering)
        service_id: str,
        store_path: str,
        topics: Optional[List[str]] = None,
        reward_cut: float = 0.25,
        delegation_fee_wei: int = 10**15,
        sync_interval: Optional[float] = None,
        degree: int = 6,
    ) -> None:
        if not 0.0 <= reward_cut <= 1.0:
            raise SimulationError("reward_cut must be within [0, 1]")
        self.net = net
        self.service_id = service_id
        self.config: ProtocolConfig = net.config
        self.chain = net.chain
        self.contract_address = net.contract.address
        self.reward_cut = reward_cut
        self.delegation_fee_wei = delegation_fee_wei
        self.sync_interval = (
            sync_interval
            if sync_interval is not None
            else self.config.sync_interval
        )
        self.degree = degree
        self.topics = list(topics) if topics else [DEFAULT_PUBSUB_TOPIC]
        self.store = WatchtowerStore(store_path)
        self.account = self.chain.create_account(
            f"eoa:{service_id}", 0
        ).address

        #: Fault/recovery bookkeeping (survives crashes in-process;
        #: everything *stateful* lives in the store).
        self.crashes = 0
        self.replayed_events = 0
        self.recovery_time = 0.0
        self._restarted_at: Optional[float] = None
        self._recovering: Optional[set] = None
        self._running = False

        self._stop_tasks: List[Callable[[], None]] = []
        #: Optional ``(neighbor_id, now) -> bool`` gate on dial plans.
        #: Parallel runs install a churn-plan filter: the static plan
        #: may name peers that left before a *restart* re-dials, and
        #: connecting to a departed node is layout-dependent (raises
        #: where it was owned, half-links where it was remote).
        self.dial_filter: Optional[Callable[[str, float], bool]] = None
        self.relay: Optional[WakuRelayNode] = None
        self.group: Optional[LocalGroup] = None
        self._validators: Dict[str, RlnMessageValidator] = {}
        self._cursor = EventCursor(self.chain, self.contract_address)
        self._membership_events_applied = 0

    # -- stack construction -------------------------------------------------------

    def _topic_domain(self, pubsub_topic: str) -> Optional[str]:
        """Same domain separation the peers use (core/peer.py) — the
        watchtower must see the very nullifiers the peers see."""
        if pubsub_topic == DEFAULT_PUBSUB_TOPIC:
            return self.config.domain
        base = self.config.domain or ""
        return f"{base}|topic:{pubsub_topic}"

    def _build_stack(self) -> None:
        """Fresh in-memory state: relay node, membership replica,
        per-topic validators. Called at first start and every restart —
        a restarted process owns nothing but its store."""
        config = self.config
        net = self.net
        self.group = (
            net.membership_store.local_group(config.domain or "")
            if net.membership_store is not None
            else LocalGroup(config.merkle_depth, config.root_window)
        )
        self._membership_events_applied = 0
        self._cursor = EventCursor(self.chain, self.contract_address)
        self.epoch_tracker = EpochTracker(
            net.network.simulator, config.epoch_length
        )
        self.relay = WakuRelayNode(
            self.service_id,
            net.network,
            gossip_params=config.gossip,
        )
        self._validators = {}
        for topic in self.topics:
            verifier = RlnVerifier(
                verifying_key=net.verifying_key,
                root_predicate=self.group.is_acceptable_root,
                domain=self._topic_domain(topic),
                cache=net.verification_cache,
                metrics=net.metrics,
            )
            validator = RlnMessageValidator(
                verifier=verifier,
                epoch_tracker=self.epoch_tracker,
                nullifier_map=NullifierMap(config.thr),
                metrics=net.metrics,
            )
            validator.on_spam(
                lambda evidence, t=topic: self._on_evidence(t, evidence)
            )
            self._validators[topic] = validator
            self.relay.join_topic(topic)
            self.relay.add_validator(
                lambda message, t=topic: self._validate(t, message),
                topic=topic,
            )

    def _dial(self) -> None:
        """Connect into the overlay (``degree`` planned peers)."""
        now = self.net.network.simulator.now
        for neighbor in watchtower_dial_plan(
            self.net, self.service_id, self.degree
        ):
            if self.dial_filter is not None and not self.dial_filter(
                neighbor, now
            ):
                continue
            self.net.network.connect(self.service_id, neighbor)

    # -- lifecycle ------------------------------------------------------------------

    def start(self) -> None:
        """Build the stack, bootstrap from the store, join the mesh."""
        if self._running:
            raise SimulationError(f"{self.service_id} already running")
        self.store.open()
        self._build_stack()
        self._bootstrap()
        self._dial()
        self.relay.start()
        self._schedule_tasks()
        self._running = True

    def crash(self) -> None:
        """Fault injection: the process dies. In-memory state is gone,
        timers stop, the overlay drops its links, the store closes
        (whatever was committed is all a restart will have)."""
        if not self._running:
            return
        self.crashes += 1
        for cancel in self._stop_tasks:
            cancel()
        self._stop_tasks.clear()
        self.relay.stop()
        self.net.network.detach(self.service_id)
        self.store.close()
        self.relay = None
        self.group = None
        self._validators = {}
        self._running = False

    def restart(self) -> None:
        """Recover from the persisted store: replay, catch up, resume."""
        if self._running:
            raise SimulationError(f"{self.service_id} already running")
        now = self.net.simulator.now
        self.store.open()
        self._restarted_at = now
        self._build_stack()
        self._bootstrap()
        # Recovery = the evidence in flight at restart reaching a
        # terminal state; measured by the enforcement ticks below.
        self._recovering = set(self.store.unresolved_evidence())
        self._check_recovered(now)
        self._dial()
        self.relay.start()
        self._schedule_tasks()
        self._running = True

    def stop(self) -> None:
        """Orderly shutdown at end of run (store stays open so the
        scenario runner can read the summary; ``close()`` ends it)."""
        if not self._running:
            return
        for cancel in self._stop_tasks:
            cancel()
        self._stop_tasks.clear()
        self.relay.stop()
        self._running = False

    def close(self) -> None:
        self.store.close()

    def _schedule_tasks(self) -> None:
        sim = self.net.simulator
        self._stop_tasks.append(
            sim.schedule_periodic(
                self.sync_interval,
                lambda _sim: self._tick(),
                label=f"watchtower:{self.service_id}",
                jitter=0.2,
                stagger=True,
                rng=sim.entity_rng(self.service_id),
                shard=self.service_id,
            )
        )
        self._stop_tasks.append(
            sim.schedule_periodic(
                self.config.epoch_length,
                lambda _sim: self._housekeeping(),
                label=f"watchtower-gc:{self.service_id}",
                jitter=0.2,
                stagger=True,
                rng=sim.entity_rng(self.service_id),
                shard=self.service_id,
            )
        )

    # -- bootstrap / replay ------------------------------------------------------------

    def _bootstrap(self) -> None:
        """Rebuild derived state from chain + store.

        Membership is replayed from the log's genesis (the tree is
        in-memory only); enforcement side effects run only for events
        at or past the committed cursor — everything before it was
        already acted on in a previous incarnation.
        """
        now = self.net.simulator.now
        committed = self.store.cursor()
        store = self.store
        store.begin()
        for event in self.chain.events_since(0):
            if event.contract != self.contract_address:
                continue
            self._apply_event(
                event, enforce=event.log_index >= committed, now=now
            )
            if event.log_index >= committed:
                self.replayed_events += 1
        self._cursor.seek(len(self.chain.event_log))
        # Reseed the nullifier maps so double-signals spanning the
        # crash (first share before, second after) are still caught.
        for topic, blob in store.signals():
            validator = self._validators.get(topic)
            if validator is not None:
                validator.nullifier_map.observe(RlnSignal.from_bytes(blob))
        self._submit_pending(now)
        store.commit_cursor(self._cursor.log_index)
        store.commit()

    # -- the enforcement tick -----------------------------------------------------------

    def _tick(self) -> None:
        """One atomic enforcement round: consume fresh chain events,
        resolve evidence they settle, submit pending slashes, commit
        the advanced cursor with everything it implies."""
        now = self.net.simulator.now
        store = self.store
        store.begin()
        self._cursor.catch_up(
            lambda event: self._apply_event(event, enforce=True, now=now)
        )
        self._submit_pending(now)
        store.commit_cursor(self._cursor.log_index)
        store.commit()
        self._check_recovered(now)

    def _housekeeping(self) -> None:
        current = self.epoch_tracker.current_epoch
        for validator in self._validators.values():
            validator.housekeeping()
        self.store.prune_signals(current, self.config.thr)

    def _apply_event(self, event, enforce: bool, now: float) -> None:
        if event.name == "MemberRegistered":
            self.group.apply_registration(
                IdentityCommitment(Fr(event.args["pk"])),
                self._membership_events_applied,
            )
            self._membership_events_applied += 1
        elif event.name == "MembersRegistered":
            # Genesis batch (one event; bulk-applied, nothing to enforce).
            self.group.apply_registration_batch(
                event.args["pks"], self._membership_events_applied
            )
            self._membership_events_applied += 1
        elif event.name == "MemberRemoved":
            self.group.apply_removal(
                event.args["index"], self._membership_events_applied
            )
            self._membership_events_applied += 1
            if enforce:
                self._resolve_evidence(event.args["pk"], now)

    def _resolve_evidence(self, pk: int, now: float) -> None:
        """A member is gone from the group — settle our evidence, if
        any. Idempotent: terminal rows are left untouched, so replays
        never double-pay or double-count."""
        store = self.store
        status = store.evidence_status(pk)
        if status is None or status in ("confirmed", "lost", "preempted"):
            return
        if status == "pending":
            # Someone else slashed the offender before we submitted.
            store.resolve_evidence(pk, "preempted", now)
            return
        # status == "submitted": our transaction raced for this slash.
        receipt = self.chain.receipts.get(store.evidence_tx(pk))
        if receipt is not None and receipt.success:
            store.resolve_evidence(pk, "confirmed", now)
            self._award(now)
        else:
            # Mined after a competitor's slash → reverted ("unknown
            # member"); the reward went to the winner.
            store.resolve_evidence(pk, "lost", now)

    def _submit_pending(self, now: float) -> None:
        for pk, secret in self.store.pending_evidence():
            if not self.group.contains(IdentityCommitment(Fr(pk))):
                # Already removed per our own replica — the removal
                # event will be (or was) consumed by the cursor loop;
                # submitting would only buy a guaranteed revert.
                self.store.resolve_evidence(pk, "preempted", now)
                continue
            tx = self.chain.transact(
                self.account,
                self.contract_address,
                "slash",
                secret,
                calldata_bytes=4 + 32,
                submitted_at=now,
            )
            self.store.mark_submitted(pk, tx.tx_hash)

    def _award(self, now: float) -> None:
        """Split one confirmed slash reward with the delegators."""
        contract = self.net.contract
        reward = contract.stake_wei - int(
            contract.stake_wei * contract.burn_fraction
        )
        store = self.store
        store.add_ledger("reward", self.contract_address, reward, now)
        delegations = store.delegations()
        if delegations:
            kept = int(reward * self.reward_cut)
            share = (reward - kept) // len(delegations)
            if share > 0:
                for node_id, account in delegations:
                    self.chain.transfer_value(
                        self.account, account, share
                    )
                    store.add_ledger("payout", node_id, share, now)

    def _check_recovered(self, now: float) -> None:
        if self._recovering is None:
            return
        unresolved = set(self.store.unresolved_evidence())
        if not (self._recovering & unresolved):
            self.recovery_time += now - self._restarted_at
            self._recovering = None

    # -- detection -----------------------------------------------------------------------

    def _validate(self, topic: str, message: WakuMessage):
        validator = self._validators[topic]
        report = validator.validate_bytes(message.rate_limit_proof)
        if (
            report.outcome is ValidationOutcome.RELAY
            and report.signal is not None
        ):
            # Write-ahead: the first signal per (epoch, phi) is durable
            # before the service could ever need it for detection.
            self.store.record_signal(
                topic,
                report.signal.epoch,
                str(int(report.signal.internal_nullifier)),
                message.rate_limit_proof,
            )
        return OUTCOME_TO_GOSSIP[report.outcome]

    def _on_evidence(self, topic: str, evidence: SlashingEvidence) -> None:
        pk = int(evidence.commitment.element)
        if not self.group.contains(evidence.commitment):
            return  # already slashed in our replica
        self.store.put_evidence(
            pk,
            int(evidence.recovered_secret.element),
            evidence.epoch,
            topic,
            self.net.simulator.now,
        )

    # -- delegation ------------------------------------------------------------------------

    def delegate(self, peer) -> None:
        """Enroll ``peer`` as a delegating light client: it pays the
        one-off fee, stops claiming slashes itself, and earns a share
        of every reward this service wins."""
        self.delegate_id(peer.node_id, peer.account)
        peer.disable_slash_reporting()

    def delegate_id(self, node_id: str, account: str) -> None:
        """The chain/store half of a delegation — everything except
        flipping the delegator's own reporting switch. Build-per-worker
        runners call this for delegators that live on other workers
        (the fee transfer and ledger must land on every replica; the
        switch flip is the owner's job)."""
        now = self.net.simulator.now
        self.chain.transfer_value(
            account, self.account, self.delegation_fee_wei
        )
        self.store.add_delegation(
            node_id, account, self.delegation_fee_wei, now
        )
        self.store.add_ledger(
            "fee", node_id, self.delegation_fee_wei, now
        )

    # -- reporting -------------------------------------------------------------------------

    @property
    def balance(self) -> int:
        return self.chain.get_account(self.account).balance

    def summary(self) -> Dict[str, object]:
        """Deterministic per-service figures for the scenario result.

        Wei amounts stay exact integers — the crash-equivalence
        acceptance criterion compares economics bit-for-bit, and a
        float would silently round 10**18-scale stakes.
        """
        counts = self.store.evidence_counts()
        submitted = sum(
            counts.get(s, 0) for s in ("submitted", "confirmed", "lost")
        )
        rewards = self.store.ledger_total("reward")
        paid_out = self.store.ledger_total("payout")
        return {
            "detected": sum(counts.values()),
            "submitted": submitted,
            "slashes_won": counts.get("confirmed", 0),
            "lost_races": counts.get("lost", 0),
            "preempted": counts.get("preempted", 0),
            "pending": (
                counts.get("pending", 0) + counts.get("submitted", 0)
            ),
            "rewards_wei": rewards,
            "paid_out_wei": paid_out,
            "kept_wei": rewards - paid_out,
            "fees_wei": self.store.ledger_total("fee"),
            "delegators": self.store.delegation_count(),
            "crashes": self.crashes,
            "replayed_events": self.replayed_events,
            "recovery_time": round(self.recovery_time, 6),
        }
