"""Watchtower subsystem: outsourced, crash-recoverable enforcement.

The paper's economic loop assumes every routing peer polices the
network itself; light clients cannot afford to. A
:class:`WatchtowerService` watches protected topics on behalf of
delegating peers, detects double-signals, and submits the slash
transactions for a configurable cut of the reporter reward — the
market-of-watchers extension of the cost-of-attack economics, modeled
on event-sourced monitoring services (persistent state DB plus a chain
cursor, as in Raiden's monitoring service).

Everything the service knows lives in a SQLite
:class:`WatchtowerStore` — seen nullifiers per epoch, pending slashing
evidence, the committed chain-event cursor, the delegation ledger — so
a crashed service restarted mid-run replays the chain from its
committed cursor, catches up missed membership and slash events, and
never double-submits evidence it already acted on.
"""

from .store import WatchtowerStore
from .service import WatchtowerService

__all__ = ["WatchtowerService", "WatchtowerStore"]
