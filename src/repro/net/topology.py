"""Topology generators for network simulations.

GossipSub deployments form approximately random-regular overlays (every
peer keeps ~D mesh links), so that is the default; small-world and
Erdős–Rényi generators are provided for sensitivity experiments.
NetworkX does the graph generation; this module wires the resulting
edges into a :class:`~repro.net.network.Network`.
"""

from __future__ import annotations

from typing import List, Sequence

import networkx as nx

from ..errors import NetworkError
from .network import Network, NodeId


def _apply_edges(
    network: Network, node_ids: Sequence[NodeId], graph: nx.Graph
) -> int:
    for a, b in graph.edges():
        network.connect(node_ids[a], node_ids[b])
    return graph.number_of_edges()


def connect_random_regular(
    network: Network, node_ids: Sequence[NodeId], degree: int, seed: int = 0
) -> int:
    """Random ``degree``-regular overlay (the GossipSub-like default)."""
    n = len(node_ids)
    if n <= degree:
        raise NetworkError(f"need more than {degree} nodes, got {n}")
    if (n * degree) % 2:
        raise NetworkError("n * degree must be even for a regular graph")
    graph = nx.random_regular_graph(degree, n, seed=seed)
    return _apply_edges(network, node_ids, graph)


def connect_small_world(
    network: Network,
    node_ids: Sequence[NodeId],
    k: int = 6,
    rewire_probability: float = 0.1,
    seed: int = 0,
) -> int:
    """Watts–Strogatz small-world overlay."""
    graph = nx.connected_watts_strogatz_graph(
        len(node_ids), k, rewire_probability, seed=seed
    )
    return _apply_edges(network, node_ids, graph)


def connect_erdos_renyi(
    network: Network,
    node_ids: Sequence[NodeId],
    edge_probability: float = 0.1,
    seed: int = 0,
) -> int:
    """G(n, p) overlay; retries until connected so gossip can reach all."""
    n = len(node_ids)
    for attempt in range(100):
        graph = nx.erdos_renyi_graph(n, edge_probability, seed=seed + attempt)
        if nx.is_connected(graph):
            return _apply_edges(network, node_ids, graph)
    raise NetworkError(
        f"could not draw a connected G({n}, {edge_probability}) in 100 tries"
    )


def connect_full_mesh(network: Network, node_ids: Sequence[NodeId]) -> int:
    """Every pair connected (tiny test networks only)."""
    count = 0
    for i, a in enumerate(node_ids):
        for b in node_ids[i + 1 :]:
            network.connect(a, b)
            count += 1
    return count


def diameter(network: Network) -> int:
    """Hop diameter of the current overlay (for experiment reporting)."""
    graph = nx.Graph()
    graph.add_nodes_from(network.node_ids())
    for node_id in network.node_ids():
        for neighbor in network.neighbors(node_id):
            graph.add_edge(node_id, neighbor)
    if graph.number_of_nodes() == 0:
        return 0
    if not nx.is_connected(graph):
        raise NetworkError("overlay is not connected")
    return nx.diameter(graph)


def average_degree(network: Network) -> float:
    ids: List[NodeId] = network.node_ids()
    if not ids:
        return 0.0
    return sum(len(network.neighbors(i)) for i in ids) / len(ids)
