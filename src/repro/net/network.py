"""Simulated peer-to-peer network: nodes, links, delayed delivery.

The network is intentionally PII-free: a packet delivered to a node
carries only the *previous hop* (the neighbour it arrived from), never
an origin address — mirroring how a gossip overlay only ever sees its
direct peers. Receiver and sender anonymity in Waku-Relay rest on this
property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Protocol, Set

from ..errors import NetworkError
from ..sim.latency import LatencyModel, UniformLatency
from ..sim.metrics import MetricsRegistry
from ..sim.simulator import Simulator

#: Node identifiers are short strings ("peer-17").
NodeId = str


class NetworkNode(Protocol):
    """What the network needs from an attached protocol instance.

    Nodes may additionally define ``on_link_down(peer_id)``; the network
    calls it synchronously when a link of theirs is removed (explicit
    ``disconnect`` or a neighbour's ``detach``), which is what lets the
    gossipsub router skip per-heartbeat neighbour polling.
    """

    node_id: NodeId

    def deliver(self, from_peer: NodeId, packet: Any) -> None:
        """Handle a packet that arrived from direct neighbour ``from_peer``."""


@dataclass
class Network:
    """Bidirectional links with per-hop latency, jitter and loss.

    Adjacency is indexed per node, so :meth:`neighbors` is O(degree)
    rather than O(total links) — the difference between a 5k-peer
    heartbeat being practical or quadratic.
    """

    simulator: Simulator
    latency: LatencyModel = field(default_factory=UniformLatency)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def __post_init__(self) -> None:
        self._nodes: Dict[NodeId, NetworkNode] = {}
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        #: Remote endpoint -> ``(active_from, active_until)`` presence
        #: window. Membership tests against remotes must answer by the
        #: simulated clock (the churn plan's times), not by local node
        #: objects — otherwise "is this peer alive?" depends on which
        #: worker asks.
        self._remote_presence: Dict[NodeId, tuple] = {}
        self._link_total = 0
        #: receiver -> "deliver:<receiver>"; building the label string
        #: once per node instead of once per packet keeps it off the
        #: per-send path.
        self._deliver_labels: Dict[NodeId, str] = {}
        # Pre-bound metric sinks: every packet touches these, and the
        # registry indirection is measurable at millions of sends.
        self._counters = self.metrics.counters
        self._latency_hist = self.metrics.histograms["net.latency"]
        # Window-isolated kernels deliver through a registered port —
        # a picklable (sender, receiver, packet) payload — so a
        # delivery crossing a worker boundary needs no closure.
        self._isolated = self.simulator.entity_isolated
        if self._isolated:
            self.simulator.register_port("net.deliver", self._deliver_port)
            self.simulator.register_port("net.link_up", self._link_up_port)
            self.simulator.register_port(
                "net.link_down", self._link_down_port
            )

    def _deliver_port(self, payload: Any) -> None:
        sender, receiver, packet = payload
        target = self._nodes.get(receiver)
        if target is None:
            self.metrics.increment("net.packets_dead_lettered")
            return
        target.deliver(sender, packet)

    def _link_up_port(self, payload: Any) -> None:
        """The remote endpoint of a runtime dial learns of its new
        link (see :meth:`connect`'s window-isolated branch)."""
        node, peer = payload
        if node not in self._nodes:
            return
        self._adjacency[node].add(peer)

    def _link_down_port(self, payload: Any) -> None:
        """The remote endpoint of a runtime detach loses its link (see
        :meth:`detach`'s window-isolated branch). Link accounting
        happened on the victim's side; here only the survivor's
        adjacency and hook run."""
        victim, neighbor = payload
        if neighbor not in self._adjacency:
            return
        if victim in self._adjacency[neighbor]:
            self._adjacency[neighbor].discard(victim)
            self._notify_link_down(neighbor, victim)

    # -- membership ----------------------------------------------------------

    def attach(self, node: NetworkNode) -> None:
        if node.node_id in self._nodes:
            raise NetworkError(f"node {node.node_id!r} already attached")
        self._nodes[node.node_id] = node
        self._adjacency.setdefault(node.node_id, set())

    def attach_remote(self, node_id: NodeId) -> None:
        """Declare a node that lives on another worker.

        Build-per-worker networks hold real node objects only for the
        shards they own; every other peer of the roster is attached as
        a *remote endpoint* — an adjacency row with no node behind it —
        so build-time wiring (mesh links, topic maps) and runtime sends
        resolve normally, while actual deliveries to it are exported as
        barrier packets to the worker that owns it.
        """
        if node_id in self._nodes:
            raise NetworkError(f"node {node_id!r} already attached")
        self._adjacency.setdefault(node_id, set())
        self._remote_presence.setdefault(node_id, (0.0, float("inf")))

    def set_remote_presence(
        self,
        node_id: NodeId,
        active_from: float,
        active_until: float = float("inf"),
    ) -> None:
        """Bound a remote endpoint's liveness window (churn plan).

        A churn-plan joiner owned elsewhere exists here from its join
        time; a planned victim stops existing at its leave time. The
        window makes :meth:`__contains__` agree with the owner's live
        attach/detach to the tick: plan events are scheduled under
        ``churn-*`` build contexts, whose origins sort before every
        peer origin at equal timestamps, so the half-open
        ``[from, until)`` test reproduces the owner's execution order
        exactly.
        """
        if node_id not in self._remote_presence:
            raise NetworkError(f"{node_id!r} is not a remote endpoint")
        self._remote_presence[node_id] = (active_from, active_until)

    def detach(self, node_id: NodeId) -> None:
        """Remove a node and all of its links (crash / churn model)."""
        if node_id not in self._nodes:
            raise NetworkError(f"unknown node {node_id!r}")
        if self._isolated and self.simulator.executing:
            # Synchronously mutating every neighbour's adjacency would
            # be a hidden cross-shard write under window isolation (a
            # neighbour owned by another worker would never see it, or
            # see it at a partition-dependent time). The victim's half
            # — its own handler's doing, replayed identically on every
            # partition — commits at once; each survivor learns of the
            # loss through a keyed ``net.link_down`` port event one
            # latency draw later, owned-or-foreign alike.
            del self._nodes[node_id]
            rng = self.simulator.entity_rng(node_id)
            for neighbor in sorted(self._adjacency.pop(node_id, set())):
                self._link_total -= 1
                delay = self.latency.sample_latency(rng)
                self.simulator.schedule_port(
                    delay,
                    "net.link_down",
                    (node_id, neighbor),
                    label=f"link_down:{neighbor}",
                    shard=neighbor,
                )
            return
        del self._nodes[node_id]
        for neighbor in self._adjacency.pop(node_id, set()):
            self._adjacency[neighbor].discard(node_id)
            self._link_total -= 1
            self._notify_link_down(neighbor, node_id)

    def node(self, node_id: NodeId) -> NetworkNode:
        if node_id not in self._nodes:
            raise NetworkError(f"unknown node {node_id!r}")
        return self._nodes[node_id]

    def node_ids(self) -> List[NodeId]:
        return list(self._nodes)

    def __contains__(self, node_id: NodeId) -> bool:
        """Is this peer alive right now — anywhere, not just locally?

        Live local nodes count always; remote endpoints (peers owned
        by another worker) count while the simulated clock is inside
        their presence window. Runtime decisions like PX dialing go
        through this test, so it must not depend on which worker
        evaluates it.
        """
        if node_id in self._nodes:
            return True
        window = self._remote_presence.get(node_id)
        if window is None:
            return False
        return window[0] <= self.simulator.now < window[1]

    # -- links -----------------------------------------------------------------

    def connect(self, a: NodeId, b: NodeId) -> None:
        if a == b:
            raise NetworkError("cannot link a node to itself")
        for node_id in (a, b):
            # Remote endpoints (attach_remote) have an adjacency row
            # but no node object; build-time wiring links them freely.
            if node_id not in self._nodes and node_id not in self._adjacency:
                raise NetworkError(f"unknown node {node_id!r}")
        if self._isolated and self.simulator.executing:
            # A runtime dial (e.g. gossipsub Peer Exchange) under
            # window isolation. Mutating ``b``'s adjacency here would
            # be invisible to the worker that owns ``b`` — the classic
            # hidden cross-shard write — so only the dialer's half
            # commits synchronously (its own handler did it, which
            # every partition replays identically); the remote half
            # arrives as a port event one latency draw later, keyed
            # and routed like any other cross-shard packet. ``a`` can
            # send to ``b`` at once; ``b`` can answer only once its
            # half lands — on every shard/worker layout alike.
            if b in self._adjacency[a]:
                return
            self._adjacency[a].add(b)
            self._link_total += 1
            delay = self.latency.sample_latency(self.simulator.entity_rng(a))
            self.simulator.schedule_port(
                delay, "net.link_up", (b, a), label=f"link_up:{b}", shard=b
            )
            return
        if b not in self._adjacency[a]:
            self._adjacency[a].add(b)
            self._adjacency[b].add(a)
            self._link_total += 1

    def disconnect(self, a: NodeId, b: NodeId) -> None:
        if b in self._adjacency.get(a, ()):
            self._adjacency[a].discard(b)
            self._adjacency[b].discard(a)
            self._link_total -= 1
            self._notify_link_down(a, b)
            self._notify_link_down(b, a)

    def _notify_link_down(self, node_id: NodeId, gone_peer: NodeId) -> None:
        node = self._nodes.get(node_id)
        hook = getattr(node, "on_link_down", None)
        if hook is not None:
            hook(gone_peer)

    def are_connected(self, a: NodeId, b: NodeId) -> bool:
        return b in self._adjacency.get(a, ())

    def neighbors(self, node_id: NodeId) -> List[NodeId]:
        """Direct neighbours, sorted (deterministic iteration order)."""
        return sorted(self._adjacency.get(node_id, ()))

    def degree(self, node_id: NodeId) -> int:
        """Neighbour count without materialising the sorted list."""
        return len(self._adjacency.get(node_id, ()))

    def neighbor_set(self, node_id: NodeId) -> Set[NodeId]:
        """The live adjacency set (do not mutate); O(1)."""
        return self._adjacency.get(node_id, set())

    def link_count(self) -> int:
        return self._link_total

    # -- transmission -------------------------------------------------------------

    def send(self, sender: NodeId, receiver: NodeId, packet: Any) -> bool:
        """Schedule delivery of ``packet`` over the ``sender—receiver`` link.

        Returns False if the packet was dropped by the loss model or the
        link does not exist (e.g. the peer just disconnected); gossip is
        tolerant of both, so no exception is raised.
        """
        if receiver not in self._adjacency.get(sender, ()):
            self._counters["net.send_no_link"] += 1
            return False
        # Loss and latency draw from the *sender's* stream: on the
        # default kernels entity_rng is the shared stream (the
        # historical behaviour, bit for bit), on the windowed kernel
        # it makes the draw independent of shard/worker interleaving.
        rng = self.simulator.entity_rng(sender)
        if self.latency.sample_loss(rng):
            self._counters["net.packets_lost"] += 1
            return False
        delay = self.latency.sample_latency(rng)
        self._counters["net.packets_sent"] += 1
        self._latency_hist.observe(delay)

        label = self._deliver_labels.get(receiver)
        if label is None:
            label = self._deliver_labels[receiver] = f"deliver:{receiver}"

        if self._isolated:
            # Port form: same key, same order, but exportable across
            # a worker boundary when the receiver lives elsewhere.
            self.simulator.schedule_port(
                delay,
                "net.deliver",
                (sender, receiver, packet),
                label=label,
                shard=receiver,
            )
            return True

        def deliver(sim: Simulator) -> None:
            # The receiver may have churned out while in flight.
            target = self._nodes.get(receiver)
            if target is None:
                self.metrics.increment("net.packets_dead_lettered")
                return
            target.deliver(sender, packet)

        # The receiver is the delivery's shard affinity: a sharded
        # kernel queues the event where the receiving node lives.
        self.simulator.schedule(delay, deliver, label=label, shard=receiver)
        return True

    def broadcast(
        self, sender: NodeId, receivers: Iterable[NodeId], packet: Any
    ) -> int:
        """Send one packet to many neighbours; returns how many were sent."""
        return sum(1 for r in receivers if self.send(sender, r, packet))
