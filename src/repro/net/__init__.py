"""Simulated p2p network: nodes, links, delivery, topologies."""

from .network import Network, NetworkNode, NodeId
from .topology import (
    average_degree,
    connect_erdos_renyi,
    connect_full_mesh,
    connect_random_regular,
    connect_small_world,
    diameter,
)

__all__ = [
    "Network",
    "NetworkNode",
    "NodeId",
    "connect_random_regular",
    "connect_small_world",
    "connect_erdos_renyi",
    "connect_full_mesh",
    "diameter",
    "average_degree",
]
