"""Protocol-wide constants.

Values that the paper fixes (or that are fixed by the Ethereum / BN254 /
Waku ecosystems the paper builds on) live here so every subsystem agrees
on them.
"""

from __future__ import annotations

#: BN254 (alt_bn128) scalar-field modulus; the field of Poseidon, the
#: membership tree, nullifiers and Shamir shares in the RLN construction.
BN254_SCALAR_FIELD = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)

#: Default depth of the RLN membership Merkle tree. The paper quotes the
#: storage figures for a depth-20 tree and proof timing for 2**32 members
#: (depth 32).
DEFAULT_MERKLE_DEPTH = 20

#: Default epoch length T in seconds (the external nullifier is
#: ``epoch = unix_time // EPOCH_LENGTH_SECONDS``).
DEFAULT_EPOCH_LENGTH_SECONDS = 10.0

#: Default maximum network delay D in seconds, used to derive the epoch
#: acceptance threshold Thr = D / T from Section III of the paper.
DEFAULT_MAX_NETWORK_DELAY_SECONDS = 20.0

#: Default membership stake (in wei) that the contract requires.
DEFAULT_MEMBERSHIP_STAKE_WEI = 10**18  # 1 ether

#: Fraction of a slashed member's stake that is burnt; the remainder is
#: paid to whoever submitted the slashing transaction.
DEFAULT_SLASH_BURN_FRACTION = 0.5

#: Serialized size, in bytes, of an identity secret or commitment (§IV:
#: "Each peer persists a 32B public and secret keys").
KEY_SIZE_BYTES = 32

#: Modeled size of the Groth16 prover key reported by the paper (§IV).
PROVER_KEY_SIZE_BYTES = int(3.89 * 1024 * 1024)

#: Groth16 proofs are three group elements: 2 x G1 (64 B) + 1 x G2 (128 B)
#: when uncompressed on BN254; 128 B compressed. We model the compressed
#: form.
PROOF_SIZE_BYTES = 128

#: Paper-reported proof generation latency (seconds) on an iPhone 8 for a
#: group of 2**32 members (§IV). The performance model scales this with
#: tree depth.
PAPER_PROOF_GENERATION_SECONDS = 0.5
PAPER_PROOF_GENERATION_DEPTH = 32

#: Paper-reported constant verification latency (seconds) (§IV).
PAPER_PROOF_VERIFICATION_SECONDS = 0.030

#: Paper-reported storage for a depth-20 membership tree: 67 MB naive
#: versus 0.128 KB with the optimization of reference [9] (§IV).
PAPER_FULL_TREE_STORAGE_BYTES = 67_000_000
PAPER_OPTIMIZED_TREE_STORAGE_BYTES = 128

#: Ethereum mainnet average block interval (seconds), used by the
#: propagation-speed comparison (messages "must be mined" on-chain).
ETH_BLOCK_INTERVAL_SECONDS = 13.0
