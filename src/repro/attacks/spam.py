"""Adversary models: spammers and Sybil bot armies.

These drive the comparison experiments (E7/E8): the same flooding
adversary is thrown at Waku-RLN-Relay, the PoW baseline and the
peer-scoring baseline, and the experiment records how much spam reaches
honest peers and what the attack costs.

:class:`RlnSpammer` is the *static* one-shot flooder kept for those
experiments; the scenario harness drives the stateful, chain-aware
agents of :mod:`repro.adversaries` instead (its ``burst-flood``
strategy is this behaviour, ported to the engine).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..baselines.pow import ATTACKER_RIG, DeviceProfile
from ..baselines.relay_baselines import BaselineNetwork, PowRelayNetwork
from ..core.peer import WakuRlnRelayPeer
from ..core.protocol import WakuRlnRelayNetwork
from ..errors import RegistrationError
from ..waku.message import WakuMessage


@dataclass
class RlnSpammer:
    """A registered member that violates its rate limit.

    The spammer publishes ``burst`` distinct messages per epoch — every
    message past the first in an epoch is a double-signal revealing a
    new share of its key.
    """

    peer: WakuRlnRelayPeer
    burst: int = 5
    sent: int = 0
    payloads: List[bytes] = field(default_factory=list)

    def flood_epoch(self, marker: bytes = b"SPAM") -> int:
        """Emit one burst in the current epoch; returns messages sent.

        Stops early once the spammer's membership is gone (its proofs
        no longer verify against any accepted root, so continuing is
        pointless for the attacker).
        """
        emitted = 0
        for i in range(self.burst):
            if not self.peer.is_registered:
                break
            payload = marker + f"|{self.sent}".encode()
            try:
                self.peer.publish(payload, bypass_rate_limit=True)
            except RegistrationError:
                break
            self.payloads.append(payload)
            self.sent += 1
            emitted += 1
        return emitted

    def run(self, net: WakuRlnRelayNetwork, epochs: int) -> None:
        """Schedule one burst at the start of each of the next epochs."""
        epoch_length = net.config.epoch_length
        for k in range(epochs):
            net.simulator.schedule(
                k * epoch_length + 0.01,
                lambda _sim: self.flood_epoch(),
                label="rln-spam-burst",
            )


@dataclass
class FloodSpammer:
    """A flooding publisher for the unprotected / scoring baselines."""

    network: BaselineNetwork
    node_id: str
    rate_per_second: float = 10.0
    sent: int = 0

    def run(self, duration: float, marker: bytes = b"SPAM") -> None:
        node = next(
            n for n in self.network.nodes if n.node_id == self.node_id
        )
        interval = 1.0 / self.rate_per_second
        count = int(duration / interval)
        for k in range(count):
            def publish(_sim, seq=k):
                node.publish(WakuMessage(payload=marker + f"|{seq}".encode()))
                self.sent += 1

            self.network.simulator.schedule(
                k * interval, publish, label="flood"
            )


@dataclass
class PowSpammer:
    """A flooding attacker with serious mining hardware (PoW baseline).

    Its sustainable rate is bounded only by its rig's hash rate:
    ``rate = hash_rate / 2^difficulty`` — far above any honest phone.
    """

    network: PowRelayNetwork
    node_id: str
    device: DeviceProfile = ATTACKER_RIG
    sent: int = 0

    @property
    def sustainable_rate(self) -> float:
        return self.device.hash_rate / (2.0 ** self.network.difficulty_bits)

    def run(self, duration: float, marker: bytes = b"SPAM") -> None:
        node = next(
            n for n in self.network.nodes if n.node_id == self.node_id
        )
        interval = 1.0 / self.sustainable_rate
        count = int(duration / interval)
        for k in range(count):
            def publish(_sim, seq=k):
                self.network.publish_with_pow(
                    node, marker + f"|{seq}".encode(), self.device
                )
                self.sent += 1

            self.network.simulator.schedule(
                k * interval, publish, label="pow-flood"
            )


@dataclass
class SybilArmy:
    """Bot swarm for the peer-scoring baseline.

    Scoring penalises a *connection*; a Sybil attacker spins up fresh
    bot identities (optionally sharing one IP) and keeps flooding from
    new nodes as old ones get graylisted — the "inexpensive attack"
    of Section I.
    """

    network: BaselineNetwork
    bot_count: int = 10
    attach_degree: int = 3
    rate_per_bot: float = 5.0
    shared_ip: Optional[str] = "203.0.113.7"
    bots: List[str] = field(default_factory=list)

    def deploy(self) -> None:
        rng = self.network.simulator.rng
        honest_ids = [n.node_id for n in self.network.nodes]
        for b in range(self.bot_count):
            bot_id = f"sybil-{b}"
            neighbors = rng.sample(
                honest_ids, min(self.attach_degree, len(honest_ids))
            )
            node = self.network.add_node(bot_id, neighbors)
            self.bots.append(bot_id)
            if self.shared_ip is not None:
                for honest in self.network.nodes:
                    honest.router.scores.set_ip(bot_id, self.shared_ip)
            del node

    def run(self, duration: float, marker: bytes = b"SPAM") -> int:
        """Flood from every bot; returns the number of scheduled sends."""
        scheduled = 0
        for b, bot_id in enumerate(self.bots):
            node = next(
                n for n in self.network.nodes if n.node_id == bot_id
            )
            interval = 1.0 / self.rate_per_bot
            count = int(duration / interval)
            for k in range(count):
                def publish(_sim, seq=k, origin=b, target=node):
                    target.publish(
                        WakuMessage(
                            payload=marker + f"|{origin}|{seq}".encode()
                        )
                    )

                self.network.simulator.schedule(
                    k * interval + 0.001 * b, publish, label="sybil-flood"
                )
                scheduled += 1
        return scheduled
