"""Adversary models used by the comparison experiments."""

from .spam import FloodSpammer, PowSpammer, RlnSpammer, SybilArmy

__all__ = ["RlnSpammer", "FloodSpammer", "PowSpammer", "SybilArmy"]
