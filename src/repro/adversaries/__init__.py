"""Adaptive, chain-aware attacker agents.

The pluggable adversary engine that closes the paper's economic loop:
budget-constrained agents register through the membership contract,
spam under a chosen :class:`AdversaryStrategy`, watch the chain for
their own slashing, and rotate to fresh identities while funds remain.
:class:`AttackReport` turns the run into cost-per-delivered-spam and
stake-burnt-over-time series.

Use through the scenario harness::

    from repro.scenarios import AdversaryGroup, AdversaryMix, ScenarioSpec

    spec = ScenarioSpec(
        name="my-attack",
        description="two rotating sybils on a budget of 6 stakes",
        adversaries=AdversaryMix(groups=(
            AdversaryGroup("rotating-sybil", count=2, budget_stakes=6),
        )),
    )

or drive an :class:`AdversaryEngine` directly against a
``WakuRlnRelayNetwork`` (see ``tests/adversaries/``).
"""

from .base import AdversaryAgent, AdversaryStrategy, IdentityRecord
from .engine import AdversaryEngine
from .report import AgentReport, AttackReport, EconomicsSample
from .strategies import (
    AdaptiveBackoff,
    BurstFlooder,
    LowAndSlow,
    RotatingSybil,
    build_strategy,
    register_strategy,
    strategy_names,
)

__all__ = [
    "AdaptiveBackoff",
    "AdversaryAgent",
    "AdversaryEngine",
    "AdversaryStrategy",
    "AgentReport",
    "AttackReport",
    "BurstFlooder",
    "EconomicsSample",
    "IdentityRecord",
    "LowAndSlow",
    "RotatingSybil",
    "build_strategy",
    "register_strategy",
    "strategy_names",
]
