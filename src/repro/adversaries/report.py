"""Attack economics: what the adversary paid per delivered spam message.

Joins the engine's per-agent bookkeeping with chain state (burnt wei,
contract stake parameters, account ledgers via
:mod:`repro.core.economics`) into the cost-of-attack series the paper's
Sections I/IV argue about: a rational spammer's cumulative cost only
ever grows — every identity costs a stake, every slash burns part of
one — while the spam it buys stays bounded per identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.economics import EconomicsReport


@dataclass(frozen=True)
class EconomicsSample:
    """One point of the attack's cost/effect time series."""

    t: float
    #: Cumulative spam messages emitted / delivered to honest peers.
    spam_sent: int
    spam_delivered: int
    #: Cumulative identities bought (bootstrap registrations included).
    registrations: int
    slashes: int
    #: Cumulative stake put at risk: registrations * stake.
    attacker_spend_wei: int
    #: Attacker stake already lost to slashing (burn + reporter reward).
    attacker_stake_lost_wei: int
    #: Burnt share of the attacker's lost stakes.
    attacker_stake_burnt_wei: int
    #: Deployment-wide burnt wei (includes non-agent slashing, if any).
    stake_burnt_wei: int

    @property
    def attacker_cost_wei(self) -> int:
        """The headline cost-of-attack metric: registration spend plus
        the burnt share of slashed stakes. Both terms are cumulative,
        so the series is monotonically non-decreasing by construction —
        an attacker can only ever pay more."""
        return self.attacker_spend_wei + self.attacker_stake_burnt_wei


@dataclass(frozen=True)
class AgentReport:
    """One agent's final position."""

    node_id: str
    strategy: str
    registrations: int
    rotations: int
    slashes: int
    spam_sent: int
    budget_wei: int
    balance_wei: int
    stake_lost_wei: int
    stake_locked_wei: int
    #: Seconds from first violation to removal, per slashed identity.
    slash_latencies: List[float] = field(default_factory=list)


@dataclass(frozen=True)
class AttackReport:
    """Whole-attack summary the scenario runner folds into its result."""

    agents: List[AgentReport]
    series: List[EconomicsSample]
    stake_wei: int
    burn_fraction: float
    #: Account-level view of the attacker peers (chain ledger join).
    economics: Optional[EconomicsReport] = None

    # -- totals ---------------------------------------------------------------

    @property
    def spam_sent(self) -> int:
        return sum(a.spam_sent for a in self.agents)

    @property
    def registrations(self) -> int:
        return sum(a.registrations for a in self.agents)

    @property
    def rotations(self) -> int:
        return sum(a.rotations for a in self.agents)

    @property
    def slashes(self) -> int:
        return sum(a.slashes for a in self.agents)

    @property
    def spend_wei(self) -> int:
        return self.registrations * self.stake_wei

    @property
    def stake_lost_wei(self) -> int:
        return self.slashes * self.stake_wei

    @property
    def slash_latencies(self) -> List[float]:
        out: List[float] = []
        for agent in self.agents:
            out.extend(agent.slash_latencies)
        return out

    def cost_per_delivered_spam(self, delivered: int) -> float:
        """Wei of attacker spend per spam message that reached an
        honest peer — infinite spend buys nothing once delivery is 0."""
        if delivered <= 0:
            return float("inf") if self.spend_wei else 0.0
        return self.spend_wei / delivered

    def series_dict(self) -> Dict[str, List[float]]:
        """Column-oriented series for ``ScenarioResult.series``."""
        columns: Dict[str, List[float]] = {
            "t": [],
            "spam_sent": [],
            "spam_delivered": [],
            "registrations": [],
            "attacker_cost_wei": [],
            "attacker_stake_lost_wei": [],
            "stake_burnt_wei": [],
        }
        for sample in self.series:
            columns["t"].append(sample.t)
            columns["spam_sent"].append(float(sample.spam_sent))
            columns["spam_delivered"].append(float(sample.spam_delivered))
            columns["registrations"].append(float(sample.registrations))
            columns["attacker_cost_wei"].append(
                float(sample.attacker_cost_wei)
            )
            columns["attacker_stake_lost_wei"].append(
                float(sample.attacker_stake_lost_wei)
            )
            columns["stake_burnt_wei"].append(float(sample.stake_burnt_wei))
        return columns
