"""Built-in attacker strategies and their registry.

Four archetypes from the paper's threat discussion, all behind the
common :class:`~repro.adversaries.base.AdversaryStrategy` interface:

* ``burst-flood`` — the classic one-shot spammer (the pre-engine
  ``RlnSpammer`` behaviour, ported): a fixed burst for a fixed number
  of epochs, no rotation. Dies with its first identity.
* ``rotating-sybil`` — keeps bursting and, whenever the network slashes
  it, buys a fresh identity while the budget lasts; the attacker the
  cost-of-attack curves are about.
* ``low-and-slow`` — stays at the one-message-per-epoch limit and only
  occasionally emits a second message, probing how quickly violations
  are detected while spending as little stake as possible.
* ``adaptive-backoff`` — adjusts its burst size to the observed slash
  latency: fast slashing halves the burst, slow or absent slashing
  grows it. Converges to the most spam the network lets it get away
  with per stake.

Add a strategy by subclassing ``AdversaryStrategy`` and registering a
factory with :func:`register_strategy`; scenario specs then name it in
an ``AdversaryGroup``.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ScenarioError
from .base import AdversaryAgent, AdversaryStrategy


class BurstFlooder(AdversaryStrategy):
    """Fixed burst each epoch for ``epochs`` epochs; never rotates."""

    name = "burst-flood"
    rotate_on_slash = False

    def __init__(self, burst: int = 5, epochs: int = 3) -> None:
        self.burst = burst
        self.epochs = epochs

    def messages_for_epoch(
        self, agent: AdversaryAgent, epoch_index: int
    ) -> int:
        return self.burst if epoch_index < self.epochs else 0

    def finished(self, agent: AdversaryAgent, epoch_index: int) -> bool:
        return epoch_index >= self.epochs


class RotatingSybil(AdversaryStrategy):
    """Bursts every epoch and re-registers after every slash."""

    name = "rotating-sybil"
    rotate_on_slash = True

    def __init__(self, burst: int = 4) -> None:
        self.burst = burst

    def messages_for_epoch(
        self, agent: AdversaryAgent, epoch_index: int
    ) -> int:
        return self.burst


class LowAndSlow(AdversaryStrategy):
    """Stays at the legal one-message-per-epoch rate, probing rarely.

    Every ``probe_every``-th epoch it emits a second message — the
    minimal detectable violation — to measure how fast the network
    reacts, rotating to a fresh identity when caught.
    """

    name = "low-and-slow"
    rotate_on_slash = True

    def __init__(self, probe_every: int = 4) -> None:
        if probe_every < 1:
            raise ScenarioError("probe_every must be >= 1")
        self.probe_every = probe_every
        self._epochs_active = 0

    def messages_for_epoch(
        self, agent: AdversaryAgent, epoch_index: int
    ) -> int:
        self._epochs_active += 1
        if self._epochs_active % self.probe_every == 0:
            return 2  # the minimal detectable violation
        return 1


class AdaptiveBackoff(AdversaryStrategy):
    """Tunes its burst to the observed slash latency.

    A slash arriving within ``fast_latency_epochs`` of the first
    violation halves the burst (the network reacts too fast for big
    bursts to pay); a slower slash grows it by one, and surviving
    three consecutive epochs unpunished at the current burst grows
    it by two.
    """

    name = "adaptive-backoff"
    rotate_on_slash = True

    def __init__(
        self,
        burst: int = 8,
        min_burst: int = 2,
        max_burst: int = 64,
        fast_latency_epochs: float = 1.5,
    ) -> None:
        self.burst = burst
        self.min_burst = min_burst
        self.max_burst = max_burst
        self.fast_latency_epochs = fast_latency_epochs
        #: (latency_seconds) history, for the attack report.
        self.observed_latencies: List[float] = []
        self._epochs_unslashed_at_burst = 0

    def messages_for_epoch(
        self, agent: AdversaryAgent, epoch_index: int
    ) -> int:
        self._epochs_unslashed_at_burst += 1
        if self._epochs_unslashed_at_burst > 2:
            # Third consecutive epoch without punishment: push harder.
            self.burst = min(self.max_burst, self.burst + 2)
            self._epochs_unslashed_at_burst = 0
        return self.burst

    def on_slashed(self, agent: AdversaryAgent, latency: float) -> None:
        self.observed_latencies.append(latency)
        epoch_length = agent.peer.config.epoch_length
        if latency <= self.fast_latency_epochs * epoch_length:
            self.burst = max(self.min_burst, self.burst // 2)
        else:
            self.burst = min(self.max_burst, self.burst + 1)
        self._epochs_unslashed_at_burst = 0


#: name -> factory(**params) building a fresh per-agent instance.
_STRATEGIES: Dict[str, Callable[..., AdversaryStrategy]] = {}


def register_strategy(
    name: str, factory: Callable[..., AdversaryStrategy]
) -> None:
    """Make a strategy buildable from scenario specs by name."""
    if name in _STRATEGIES:
        raise ScenarioError(f"strategy {name!r} is already registered")
    _STRATEGIES[name] = factory


def strategy_names() -> List[str]:
    return sorted(_STRATEGIES)


def strategy_summaries() -> List[Tuple[str, str]]:
    """``(name, one-line description)`` for every registered strategy."""
    out = []
    for name in strategy_names():
        doc = (_STRATEGIES[name].__doc__ or "").strip()
        out.append((name, doc.splitlines()[0] if doc else ""))
    return out


def build_strategy(
    name: str, burst: Optional[int] = None, **params: object
) -> AdversaryStrategy:
    """Instantiate a registered strategy (fresh instance per agent).

    ``burst`` is the scenario-level default burst size; it is forwarded
    only to factories that take a ``burst`` parameter (``low-and-slow``,
    for instance, has no burst — its rate is the point), and an explicit
    ``burst`` in ``params`` wins over it.
    """
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown adversary strategy {name!r}; "
            f"choose from {strategy_names()}"
        ) from None
    if burst is not None and "burst" not in params:
        if "burst" in inspect.signature(factory).parameters:
            params["burst"] = burst
    try:
        return factory(**params)
    except TypeError as exc:
        raise ScenarioError(
            f"bad parameters for strategy {name!r}: {exc}"
        ) from None


register_strategy("burst-flood", BurstFlooder)
register_strategy("rotating-sybil", RotatingSybil)
register_strategy("low-and-slow", LowAndSlow)
register_strategy("adaptive-backoff", AdaptiveBackoff)
