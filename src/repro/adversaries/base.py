"""Stateful, budget-constrained attacker agents.

The paper's spam-protection argument is *economic*: every identity an
attacker spams from costs one stake, every detected double-signal burns
part of it, and a rational attacker must keep buying fresh identities
to keep spamming. :class:`AdversaryAgent` models exactly that actor — a
wallet with a finite budget, a current RLN identity, and a pluggable
:class:`AdversaryStrategy` deciding how hard to push each epoch — and
reacts to on-chain slashing events the way the event-driven service
agents in raiden-services react to channel events: observe, adapt,
re-register while funds remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.peer import WakuRlnRelayPeer

#: Payload marker shared with the scenario runner's delivery classifier.
SPAM_MARKER = b"SPAM"


class AdversaryStrategy:
    """Decides, per epoch, how a single agent misbehaves.

    Subclasses override :meth:`messages_for_epoch` (how many distinct
    messages to emit in the current epoch — anything above one is a
    rate violation) and optionally :meth:`on_slashed` (adapt to the
    observed slash latency) and :meth:`finished` (stop attacking).
    One strategy instance belongs to one agent, so subclasses may keep
    per-agent state on ``self``.
    """

    #: Registry name; set by subclasses.
    name: str = "base"
    #: Buy a fresh identity after losing the current one to slashing?
    rotate_on_slash: bool = True

    def messages_for_epoch(
        self, agent: "AdversaryAgent", epoch_index: int
    ) -> int:
        raise NotImplementedError

    def on_slashed(
        self, agent: "AdversaryAgent", latency: float
    ) -> None:
        """Observe how long the network took to slash the identity
        (seconds from the identity's first rate violation)."""

    def finished(self, agent: "AdversaryAgent", epoch_index: int) -> bool:
        """True once the strategy has nothing left to do."""
        return False


@dataclass
class IdentityRecord:
    """One purchased identity's life, for the attack post-mortem."""

    commitment: int
    registered_at: float
    first_violation_at: Optional[float] = None
    slashed_at: Optional[float] = None

    @property
    def slash_latency(self) -> Optional[float]:
        """Seconds from first rate violation to on-chain removal."""
        if self.slashed_at is None or self.first_violation_at is None:
            return None
        return self.slashed_at - self.first_violation_at


class AdversaryAgent:
    """One attacker: a funded wallet driving one relay peer.

    The agent's chain account is (re)funded to exactly ``budget_wei``;
    every registration locks ``stake_wei`` of it, so affordability is
    enforced by the contract itself — a rotation the agent cannot pay
    for reverts and retires the agent.
    """

    def __init__(
        self,
        peer: "WakuRlnRelayPeer",
        strategy: AdversaryStrategy,
        budget_wei: int,
        target_topics: Tuple[str, ...] = (),
    ) -> None:
        self.peer = peer
        self.strategy = strategy
        self.budget_wei = budget_wei
        self.node_id = peer.node_id
        #: Pubsub topics this agent spams, round-robin per message;
        #: empty = the peer's primary topic.
        self.target_topics: Tuple[str, ...] = tuple(target_topics)
        self.spam_sent = 0
        #: Identities bought so far (the bootstrap registration is #1).
        self.registrations = 1
        self.slashes = 0
        #: Set when the budget can no longer buy an identity.
        self.retired = False
        #: A rotation registration is in flight (tx queued / not synced).
        self.awaiting_registration = False
        self.identities: List[IdentityRecord] = [
            IdentityRecord(
                commitment=int(peer.commitment.element),
                registered_at=0.0,
            )
        ]

    # -- wallet -----------------------------------------------------------------

    @property
    def stake_wei(self) -> int:
        return self.peer.config.stake_wei

    @property
    def balance_wei(self) -> int:
        return self.peer.balance

    @property
    def rotations(self) -> int:
        return self.registrations - 1

    @property
    def spend_wei(self) -> int:
        """Cumulative registration spend (stake locked or already lost)."""
        return self.registrations * self.stake_wei

    @property
    def stake_lost_wei(self) -> int:
        return self.slashes * self.stake_wei

    def can_afford_identity(self) -> bool:
        return self.balance_wei >= self.stake_wei

    def fund(self) -> None:
        """Reset the wallet to the attack budget, net of the stake the
        bootstrap registration already locked."""
        account = self.peer.chain.get_account(self.peer.account)
        account.balance = max(0, self.budget_wei - self.stake_wei)

    # -- identity lifecycle ------------------------------------------------------

    @property
    def current_identity(self) -> IdentityRecord:
        return self.identities[-1]

    def note_violation(self, now: float) -> None:
        if self.current_identity.first_violation_at is None:
            self.current_identity.first_violation_at = now

    def on_slashed(self, commitment: int, now: float) -> None:
        """Chain observation: one of this agent's identities was removed."""
        self.slashes += 1
        for record in self.identities:
            if record.commitment == commitment and record.slashed_at is None:
                record.slashed_at = now
                latency = record.slash_latency
                self.strategy.on_slashed(
                    self, latency if latency is not None else 0.0
                )
                break

    def rotate(self, now: float) -> int:
        """Buy a fresh identity; returns its commitment.

        The caller must have checked :meth:`can_afford_identity`; the
        registration settles with the next mined block and the agent
        stays silent (``awaiting_registration``) until its own replica
        picks the event up.
        """
        commitment = self.peer.rotate_identity()
        self.registrations += 1
        self.awaiting_registration = True
        self.identities.append(
            IdentityRecord(
                commitment=int(commitment.element), registered_at=now
            )
        )
        return int(commitment.element)

    # -- acting ---------------------------------------------------------------------

    def emit_spam(self, count: int, now: float) -> int:
        """Publish ``count`` distinct messages right now; returns #sent.

        With ``target_topics`` set, messages round-robin across the
        targets (rate limits are per topic, so concentrating a burst on
        one topic is what produces double-signals there). Stops early
        once the agent's own replica shows the membership gone — its
        proofs no longer verify against any fresh root, so continuing
        is pointless for the attacker.
        """
        from ..errors import RegistrationError

        emitted = 0
        for _ in range(count):
            if not self.peer.is_registered:
                break
            payload = (
                SPAM_MARKER
                + f"|{self.node_id}|{self.registrations}|{self.spam_sent}".encode()
            )
            topic = None
            if self.target_topics:
                topic = self.target_topics[
                    self.spam_sent % len(self.target_topics)
                ]
            try:
                self.peer.publish(
                    payload, bypass_rate_limit=True, pubsub_topic=topic
                )
            except RegistrationError:
                break
            self.spam_sent += 1
            emitted += 1
        if emitted > 1:
            self.note_violation(now)
        return emitted
