"""The adversary engine: drives attacker agents on the simulated clock.

One :class:`AdversaryEngine` owns every agent of a run. Each epoch it

1. polls the chain's event log and routes ``MemberRemoved`` events to
   the agent whose identity was slashed (the agents' chain-awareness —
   the same observe/react loop raiden-services uses for channel
   events);
2. lets slashed agents buy a fresh identity while their budget allows
   (settled through the real membership contract, so the stake flows
   mid-run, not post-hoc);
3. asks each live agent's strategy how many messages to emit and
   publishes them through the agent's peer (distinct payloads — every
   message past the first per epoch is a double-signal);
4. appends one :class:`~repro.adversaries.report.EconomicsSample`, so
   cost-of-attack and stake-burnt-over-time series come out of every
   run for free.

The engine is deterministic: agents act in insertion order and take no
randomness beyond what the peers themselves draw from the seeded
simulator RNG.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from ..core.economics import build_report
from ..eth.cursor import EventCursor
from ..sim.metrics import BoundedSeries
from .base import AdversaryAgent, AdversaryStrategy
from .report import AgentReport, AttackReport, EconomicsSample

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.peer import WakuRlnRelayPeer
    from ..core.protocol import WakuRlnRelayNetwork


class AdversaryEngine:
    """Schedules and observes a population of attacker agents."""

    def __init__(
        self,
        net: "WakuRlnRelayNetwork",
        start: float = 2.0,
        spam_delivered_probe: Optional[Callable[[], int]] = None,
        max_series_samples: Optional[int] = None,
    ) -> None:
        self.net = net
        self.start = start
        #: Runner-supplied: cumulative spam deliveries to honest peers.
        self.spam_delivered_probe = spam_delivered_probe or (lambda: 0)
        self.agents: List[AdversaryAgent] = []
        #: One economics sample per epoch tick. Unbounded by default
        #: (every epoch is kept); a scenario with streaming metrics on
        #: caps it with a BoundedSeries so a 10k-epoch run holds O(cap)
        #: samples, uniformly decimated over the whole run.
        self.samples = (
            BoundedSeries(max_series_samples)
            if max_series_samples is not None
            else []
        )
        self.epoch_index = 0
        self._commitment_to_agent: Dict[int, AdversaryAgent] = {}
        self._cursor = EventCursor(net.chain, net.contract.address)
        self._stopped = False
        self._initial_balances: Dict[str, int] = {}

    # -- population -------------------------------------------------------------

    def add_agent(
        self,
        peer: "WakuRlnRelayPeer",
        strategy: AdversaryStrategy,
        budget_wei: int,
        target_topics=(),
    ) -> AdversaryAgent:
        """Enroll ``peer`` as an attacker with ``budget_wei`` to spend.

        The peer must already hold its bootstrap registration (the
        scenario runner registers everyone up front); its wallet is
        reset to the attack budget net of that first stake.
        ``target_topics`` points the agent's spam at specific RLN
        topics (the peer joins any it has not joined yet). Agents do
        not claim slashing bounties — a colluding operation does not
        police itself, and reporter rewards flowing back into attacker
        wallets would refill the budget the attack is supposed to
        exhaust (the cost series would under-state the true cost).
        """
        for topic in target_topics:
            peer.join_rln_topic(topic)
        agent = AdversaryAgent(
            peer, strategy, budget_wei, target_topics=tuple(target_topics)
        )
        agent.fund()
        peer.disable_slash_reporting()
        self.agents.append(agent)
        self._commitment_to_agent[int(peer.commitment.element)] = agent
        self._initial_balances[peer.node_id] = agent.balance_wei
        return agent

    # -- scheduling ----------------------------------------------------------------

    def launch(self) -> None:
        """Begin ticking once per epoch, starting at ``self.start``."""
        sim = self.net.simulator
        epoch_length = self.net.config.epoch_length

        def tick(_sim) -> None:
            self._tick()
            if not self._stopped:
                sim.schedule(epoch_length, tick, label="adversary-engine")

        self._stopped = False
        sim.schedule(self.start + 0.01, tick, label="adversary-engine")

    def stop(self) -> None:
        self._stopped = True

    # -- one engine round -----------------------------------------------------------

    def _tick(self) -> None:
        now = self.net.simulator.now
        self._observe_chain(now)
        for agent in self.agents:
            self._act(agent, now)
        self.epoch_index += 1
        self._sample(now)

    def _observe_chain(self, now: float) -> None:
        """Route fresh MemberRemoved events to their slashed agents."""
        for event in self._cursor.poll():
            if event.name != "MemberRemoved":
                continue
            agent = self._commitment_to_agent.get(event.args["pk"])
            if agent is not None:
                agent.on_slashed(event.args["pk"], now)

    def _act(self, agent: AdversaryAgent, now: float) -> None:
        if agent.retired:
            return
        peer = agent.peer
        if agent.awaiting_registration:
            if peer.is_registered:
                agent.awaiting_registration = False
            else:
                return  # rotation still settling / syncing
        if not peer.is_registered:
            # Current identity is gone: rotate or retire.
            if not agent.strategy.rotate_on_slash:
                agent.retired = True
                return
            if not agent.can_afford_identity():
                agent.retired = True  # economics did their job
                return
            self._commitment_to_agent[agent.rotate(now)] = agent
            return
        if agent.strategy.finished(agent, self.epoch_index):
            agent.retired = True
            return
        count = agent.strategy.messages_for_epoch(agent, self.epoch_index)
        if count > 0:
            agent.emit_spam(count, now)

    def _sample(self, now: float) -> None:
        burn = self.burn_fraction
        slashes = sum(a.slashes for a in self.agents)
        stake = self.stake_wei
        self.samples.append(
            EconomicsSample(
                t=now,
                spam_sent=sum(a.spam_sent for a in self.agents),
                spam_delivered=self.spam_delivered_probe(),
                registrations=sum(a.registrations for a in self.agents),
                slashes=slashes,
                attacker_spend_wei=sum(a.spend_wei for a in self.agents),
                attacker_stake_lost_wei=slashes * stake,
                attacker_stake_burnt_wei=slashes * int(stake * burn),
                stake_burnt_wei=self.net.chain.burnt_wei,
            )
        )

    # -- reporting --------------------------------------------------------------------

    @property
    def stake_wei(self) -> int:
        return self.net.contract.stake_wei

    @property
    def burn_fraction(self) -> float:
        return self.net.contract.burn_fraction

    @property
    def spam_sent(self) -> int:
        return sum(a.spam_sent for a in self.agents)

    @property
    def rotations(self) -> int:
        return sum(a.rotations for a in self.agents)

    @property
    def spend_wei(self) -> int:
        return sum(a.spend_wei for a in self.agents)

    def report(self) -> AttackReport:
        """Snapshot the attack's economics (callable mid-run or after)."""
        agents = [
            AgentReport(
                node_id=a.node_id,
                strategy=a.strategy.name,
                registrations=a.registrations,
                rotations=a.rotations,
                slashes=a.slashes,
                spam_sent=a.spam_sent,
                budget_wei=a.budget_wei,
                balance_wei=a.balance_wei,
                stake_lost_wei=a.stake_lost_wei,
                stake_locked_wei=(a.registrations - a.slashes)
                * self.stake_wei,
                slash_latencies=[
                    latency
                    for record in a.identities
                    if (latency := record.slash_latency) is not None
                ],
            )
            for a in self.agents
        ]
        economics = (
            build_report(
                self.net.chain,
                self.net.contract,
                [a.peer for a in self.agents],
                dict(self._initial_balances),
            )
            if self.agents
            else None
        )
        return AttackReport(
            agents=agents,
            series=list(self.samples),
            stake_wei=self.stake_wei,
            burn_fraction=self.burn_fraction,
            economics=economics,
        )
