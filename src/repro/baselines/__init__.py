"""Comparison baselines: PoW, peer-scoring-only, on-chain messaging."""

from .onchain_messaging import (
    MessageBoardContract,
    OnChainDelivery,
    OnChainMessagingSystem,
)
from .pow import (
    ATTACKER_RIG,
    DESKTOP,
    IOT_DEVICE,
    PHONE,
    DeviceProfile,
    PowEnvelope,
    leading_zero_bits,
    mine_envelope,
    verify_envelope,
)
from .relay_baselines import BaselineNetwork, PowRelayNetwork, scoring_network

__all__ = [
    "PowEnvelope",
    "mine_envelope",
    "verify_envelope",
    "leading_zero_bits",
    "DeviceProfile",
    "DESKTOP",
    "PHONE",
    "IOT_DEVICE",
    "ATTACKER_RIG",
    "BaselineNetwork",
    "PowRelayNetwork",
    "scoring_network",
    "MessageBoardContract",
    "OnChainMessagingSystem",
    "OnChainDelivery",
]
