"""On-chain messaging baseline (the original RLN signalling model).

In the original RLN proposal, signals are *written to the contract*:
a message only becomes visible once its transaction is mined, and the
sender pays gas for calldata plus storage. Section III of the paper
contrasts this with Waku-RLN-Relay's off-chain gossip distribution
("higher message propagation speed ... and we save our users the gas
price"). This module implements the on-chain side of that comparison
for experiment E6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..eth.chain import Blockchain, Contract, TxContext


class MessageBoardContract(Contract):
    """Stores message digests on-chain; emits one event per post."""

    def post(self, ctx: TxContext, payload_hash: int, epoch: int) -> int:
        """Record a message; returns its sequence number."""
        ctx.require(payload_hash != 0, "empty message")
        count = ctx.sload("count")
        ctx.sstore(("message", count), payload_hash)
        ctx.sstore("count", count + 1)
        ctx.emit("MessagePosted", payload_hash=payload_hash, epoch=epoch)
        return count

    def message_count(self) -> int:
        return self.storage.get("count", 0)


@dataclass(frozen=True)
class OnChainDelivery:
    """Timing record for one on-chain message."""

    submitted_at: float
    mined_at: float
    gas_used: int

    @property
    def latency(self) -> float:
        return self.mined_at - self.submitted_at


class OnChainMessagingSystem:
    """Posts messages through the mempool and measures visibility lag."""

    def __init__(
        self,
        block_interval: float = 13.0,
        payload_bytes: int = 256,
    ) -> None:
        self.chain = Blockchain(block_interval=block_interval)
        self.contract = MessageBoardContract("board")
        self.chain.deploy(self.contract)
        self.payload_bytes = payload_bytes
        self.chain.create_account("publisher", balance=10**20)
        self._pending: List[tuple] = []
        self.deliveries: List[OnChainDelivery] = []

    def post(self, payload_hash: int, epoch: int, now: float) -> None:
        """Submit a message transaction at simulated time ``now``."""
        tx = self.chain.transact(
            "publisher",
            "board",
            "post",
            payload_hash,
            epoch,
            calldata_bytes=4 + 64 + self.payload_bytes,
            submitted_at=now,
        )
        self._pending.append((tx.tx_hash, now))

    def mine(self, now: float) -> List[OnChainDelivery]:
        """Seal a block at ``now``; returns deliveries it contained."""
        self.chain.mine_block(timestamp=now)
        mined: List[OnChainDelivery] = []
        still_pending = []
        for tx_hash, submitted in self._pending:
            receipt = self.chain.receipts.get(tx_hash)
            if receipt is None:
                still_pending.append((tx_hash, submitted))
                continue
            mined.append(
                OnChainDelivery(
                    submitted_at=submitted,
                    mined_at=now,
                    gas_used=receipt.gas_used,
                )
            )
        self._pending = still_pending
        self.deliveries.extend(mined)
        return mined
