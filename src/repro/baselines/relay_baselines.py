"""Baseline relay networks: PoW-protected, score-only, unprotected.

These harnesses mirror :class:`~repro.core.protocol.WakuRlnRelayNetwork`
closely enough that the spam experiments (E7/E8) can run the *same*
attack against all four systems and compare outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..gossipsub.params import GossipSubParams
from ..gossipsub.router import ValidationResult
from ..gossipsub.score import PeerScoreParams, strict_topic_params
from ..net.network import Network
from ..net.topology import connect_full_mesh, connect_random_regular
from ..sim.latency import LatencyModel, UniformLatency
from ..sim.simulator import Simulator
from ..waku.message import WakuMessage
from ..waku.relay import WakuRelayNode
from .pow import DeviceProfile, PHONE, PowEnvelope, mine_envelope, verify_envelope


@dataclass
class BaselineNetwork:
    """A network of plain Waku-Relay nodes (no spam protection)."""

    peer_count: int
    seed: int = 0
    degree: Optional[int] = 6
    latency: Optional[LatencyModel] = None
    gossip: Optional[GossipSubParams] = None
    score_params: Optional[PeerScoreParams] = None

    def __post_init__(self) -> None:
        self.simulator = Simulator(seed=self.seed)
        self.network = Network(
            simulator=self.simulator,
            latency=self.latency or UniformLatency(base_seconds=0.03),
        )
        self.metrics = self.network.metrics
        self.nodes: List[WakuRelayNode] = [
            self._make_node(f"peer-{i}") for i in range(self.peer_count)
        ]
        ids = [n.node_id for n in self.nodes]
        if self.degree is None or self.peer_count <= self.degree + 1:
            connect_full_mesh(self.network, ids)
        else:
            degree = self.degree
            if (self.peer_count * degree) % 2:
                degree += 1
            connect_random_regular(self.network, ids, degree, seed=self.seed)

    def _make_node(self, node_id: str) -> WakuRelayNode:
        return WakuRelayNode(
            node_id,
            self.network,
            gossip_params=self.gossip,
            score_params=self.score_params,
        )

    def add_node(self, node_id: str, connect_to: List[str]) -> WakuRelayNode:
        """Attach an extra node (e.g. a Sybil bot) to the overlay.

        Both sides exchange subscription announcements, as real libp2p
        peers do on connection establishment.
        """
        node = self._make_node(node_id)
        by_id = {n.node_id: n for n in self.nodes}
        for peer in connect_to:
            self.network.connect(node_id, peer)
        node.start()
        for peer in connect_to:
            existing = by_id.get(peer)
            if existing is not None:
                existing.router.announce_to(node_id)
        self.nodes.append(node)
        return node

    def start(self) -> None:
        for node in self.nodes:
            node.start()

    def run(self, duration: float) -> None:
        self.simulator.run_for(duration)

    def collect_deliveries(self) -> Dict[str, List[bytes]]:
        deliveries: Dict[str, List[bytes]] = {n.node_id: [] for n in self.nodes}
        for node in self.nodes:
            node.on_message(
                lambda msg, _mid, nid=node.node_id: deliveries[nid].append(
                    msg.payload
                )
            )
        return deliveries


@dataclass
class PowRelayNetwork(BaselineNetwork):
    """Waku-Relay + Whisper PoW admission (the paper's PoW baseline).

    Every router checks the envelope's work; publishing costs the
    device's expected mining time in *simulated* seconds (the nonce
    search itself runs with a low real difficulty so tests stay fast,
    while the reported latency uses the modeled difficulty).
    """

    difficulty_bits: int = 18
    #: Difficulty actually mined in-process (kept small for speed);
    #: verification checks this real difficulty.
    mining_bits: int = 8

    def __post_init__(self) -> None:
        super().__post_init__()
        for node in self.nodes:
            node.add_validator(self._pow_validator)

    def _pow_validator(self, message: WakuMessage) -> ValidationResult:
        try:
            envelope = PowEnvelope.from_bytes(message.payload)
        except Exception:
            return ValidationResult.REJECT
        if not verify_envelope(envelope, self.mining_bits):
            self.metrics.increment("pow.rejected")
            return ValidationResult.REJECT
        return ValidationResult.ACCEPT

    def publish_with_pow(
        self,
        node: WakuRelayNode,
        payload: bytes,
        device: DeviceProfile = PHONE,
    ) -> float:
        """Mine and publish after the device's modeled mining delay.

        Returns the modeled mining time in seconds.
        """
        envelope, _ = mine_envelope(
            payload, self.mining_bits, rng=self.simulator.rng
        )
        delay = device.expected_mining_seconds(self.difficulty_bits)
        message = WakuMessage(payload=envelope.to_bytes())
        self.simulator.schedule(
            delay, lambda _sim: node.publish(message), label="pow-publish"
        )
        self.metrics.increment("pow.mined")
        return delay


def scoring_network(
    peer_count: int,
    seed: int = 0,
    degree: Optional[int] = 6,
    expected_rate: float = 1.0,
) -> BaselineNetwork:
    """A relay network defended *only* by gossipsub v1.1 peer scoring.

    This is the paper's second baseline: scoring punishes misbehaving
    *connections*, not identities, so a Sybil attacker simply shows up
    with fresh bots.
    """
    params = PeerScoreParams(
        default_topic_params=strict_topic_params(expected_rate),
    )
    return BaselineNetwork(
        peer_count=peer_count, seed=seed, degree=degree, score_params=params
    )
