"""Whisper-style proof-of-work spam protection (EIP-627).

The paper's first baseline: Whisper required each message envelope to
carry a nonce such that the envelope hash shows a minimum amount of
work. The critique (Section I) is twofold:

* PoW is **computationally expensive** — unusable on phones and other
  resource-restricted devices (the honest cost scales with 2^bits /
  device hash rate);
* it provides **no global protection** — a well-equipped spammer mines
  messages faster than honest phones can, and each message is judged in
  isolation, so there is nothing to slash and no way to remove the
  spammer.

``DeviceProfile`` models hash rates so experiments can compare an
attacker workstation against honest phones without actually burning
CPU: mining is performed for real (the nonce search is genuine), but
the *reported cost* in simulated seconds uses expected attempts /
hash rate, keeping benchmarks fast and faithful.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass
from typing import Optional

from ..errors import VerificationError


def _envelope_hash(payload: bytes, ttl: int, nonce: int) -> bytes:
    hasher = hashlib.blake2b(digest_size=32)
    hasher.update(ttl.to_bytes(4, "big"))
    hasher.update(nonce.to_bytes(8, "big"))
    hasher.update(payload)
    return hasher.digest()


def leading_zero_bits(digest: bytes) -> int:
    """Number of leading zero bits in ``digest``."""
    bits = 0
    for byte in digest:
        if byte == 0:
            bits += 8
            continue
        bits += 8 - byte.bit_length()
        break
    return bits


@dataclass(frozen=True)
class PowEnvelope:
    """A mined Whisper-style envelope."""

    payload: bytes
    ttl: int
    nonce: int

    @property
    def work_bits(self) -> int:
        return leading_zero_bits(
            _envelope_hash(self.payload, self.ttl, self.nonce)
        )

    def to_bytes(self) -> bytes:
        return (
            self.ttl.to_bytes(4, "big")
            + self.nonce.to_bytes(8, "big")
            + self.payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "PowEnvelope":
        if len(data) < 12:
            raise VerificationError("truncated PoW envelope")
        return cls(
            ttl=int.from_bytes(data[:4], "big"),
            nonce=int.from_bytes(data[4:12], "big"),
            payload=data[12:],
        )


@dataclass(frozen=True)
class DeviceProfile:
    """Hashing capability of a class of devices (hashes per second)."""

    name: str
    hash_rate: float

    def expected_mining_seconds(self, difficulty_bits: int) -> float:
        """Expected wall-clock to find a ``difficulty_bits`` nonce."""
        return (2.0 ** difficulty_bits) / self.hash_rate


#: Rough 2022-era profiles used by the comparison experiments.
DESKTOP = DeviceProfile("desktop", 2_000_000.0)
PHONE = DeviceProfile("phone", 150_000.0)
IOT_DEVICE = DeviceProfile("iot", 20_000.0)
ATTACKER_RIG = DeviceProfile("attacker-rig", 50_000_000.0)


def mine_envelope(
    payload: bytes,
    difficulty_bits: int,
    ttl: int = 50,
    rng: Optional[random.Random] = None,
    max_attempts: int = 50_000_000,
) -> tuple:
    """Find a nonce meeting ``difficulty_bits``; returns (envelope, attempts).

    The search is genuine (each candidate is hashed); keep
    ``difficulty_bits`` below ~22 in tests so runs stay fast.
    """
    rng = rng or random.Random()
    start = rng.randrange(1 << 62)
    for attempts, nonce in enumerate(
        itertools.count(start), start=1
    ):
        digest = _envelope_hash(payload, ttl, nonce)
        if leading_zero_bits(digest) >= difficulty_bits:
            return PowEnvelope(payload=payload, ttl=ttl, nonce=nonce), attempts
        if attempts >= max_attempts:
            raise VerificationError(
                f"no nonce found within {max_attempts} attempts"
            )


def verify_envelope(envelope: PowEnvelope, difficulty_bits: int) -> bool:
    """Constant-cost verification: one hash."""
    return envelope.work_bits >= difficulty_bits
