"""repro — a reproduction of Waku-RLN-Relay (ICDCS 2022).

Privacy-preserving, spam-protected, gossip-based routing: an anonymous
GossipSub overlay where every member may publish one message per epoch,
enforced by Rate-Limiting Nullifiers (RLN) with zkSNARK membership
proofs and on-chain economic slashing.

Public entry points:

* :mod:`repro.crypto` — field, Poseidon, Merkle trees, Shamir, zkSNARKs;
* :mod:`repro.rln` — the RLN framework (signals, proofs, slashing);
* :mod:`repro.eth` — simulated blockchain and membership contracts;
* :mod:`repro.gossipsub` / :mod:`repro.waku` — the routing substrate;
* :mod:`repro.core` — the integrated Waku-RLN-Relay peer and network;
* :mod:`repro.baselines` — PoW and peer-scoring comparison systems;
* :mod:`repro.analysis` — experiment harness used by the benchmarks.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
