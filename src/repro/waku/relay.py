"""Waku-Relay: anonymous pub/sub over GossipSub.

A thin protocol layer that (1) speaks :class:`WakuMessage` envelopes
over gossipsub pubsub topics, (2) never attaches any sender
identification, and (3) exposes the validator hook that
Waku-RLN-Relay's routing checks plug into (paper Figure 1: the RLN
layer sits between the application and W AKU-RELAY's GossipSub
routing).

A node may join several pubsub topics; the paper's Section III maps one
RLN group onto each topic ("Peers that belong to the same GossipSub
layer i.e., subscribed to the same topic form an RLN group"), so
validators and message handlers can be scoped per topic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, List, Optional, Set, Tuple

from ..errors import GossipError, SerializationError
from ..gossipsub.params import GossipSubParams
from ..gossipsub.router import GossipSubRouter, ValidationResult
from ..gossipsub.score import PeerScoreParams
from ..net.network import Network, NodeId
from .message import DEFAULT_PUBSUB_TOPIC, WakuMessage

#: Application handler: (message, msg_id) — note: no sender argument;
#: receivers genuinely cannot know the origin.
MessageHandler = Callable[[WakuMessage, str], None]

#: Topic-aware handler: (pubsub topic, message, msg_id) — still no
#: sender; the topic is routing metadata, not an identity.
TopicMessageHandler = Callable[[str, WakuMessage, str], None]

#: Waku validator: message -> ValidationResult.
WakuValidator = Callable[[WakuMessage], ValidationResult]

#: How many decoded envelopes a relay node memoises. Every inbound
#: message is decoded at least twice (validation, then delivery), so
#: even a small memo halves the envelope-parsing work on the hot path.
DECODE_CACHE_SIZE = 512


class WakuRelayNode:
    """One Waku-Relay peer, member of one or more pubsub topics."""

    def __init__(
        self,
        node_id: NodeId,
        network: Network,
        pubsub_topic: str = DEFAULT_PUBSUB_TOPIC,
        gossip_params: Optional[GossipSubParams] = None,
        score_params: Optional[PeerScoreParams] = None,
        processing_delay: float = 0.0,
    ) -> None:
        self.node_id = node_id
        self.pubsub_topic = pubsub_topic
        self.router = GossipSubRouter(
            node_id,
            network,
            gossip_params,
            score_params,
            processing_delay=processing_delay,
        )
        self._topics: Set[str] = set()
        #: (topic or None, handler) — None scopes to every joined topic.
        self._handlers: List[Tuple[Optional[str], MessageHandler]] = []
        self._topic_handlers: List[TopicMessageHandler] = []
        self._validators: List[Tuple[Optional[str], WakuValidator]] = []
        #: bytes -> decoded envelope (None = known-malformed bytes).
        self._decode_cache: "OrderedDict[bytes, Optional[WakuMessage]]" = (
            OrderedDict()
        )
        self._started = False
        self.router.on_delivery(self._on_delivery)
        self.join_topic(pubsub_topic)

    # -- topic membership --------------------------------------------------------

    def join_topic(self, topic: str) -> None:
        """Join a pubsub topic (subscribes immediately if started)."""
        if topic in self._topics:
            return
        self._topics.add(topic)
        self.router.add_validator(
            topic, lambda payload, frm, t=topic: self._validate(t, payload)
        )
        if self._started:
            self.router.subscribe(topic)
            for peer in self.router.peers():
                self.router.announce_to(peer)

    def leave_topic(self, topic: str) -> None:
        if topic == self.pubsub_topic:
            raise GossipError("cannot leave the node's primary topic")
        self._topics.discard(topic)
        self.router.unsubscribe(topic)

    def topics(self) -> Set[str]:
        return set(self._topics)

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        """Subscribe to all joined topics, announce, begin heartbeats."""
        self._started = True
        for topic in sorted(self._topics):
            self.router.subscribe(topic)
        for peer in self.router.peers():
            self.router.announce_to(peer)
        self.router.start()

    def stop(self) -> None:
        self._started = False
        self.router.stop()

    # -- app API -----------------------------------------------------------------

    def on_message(
        self, handler: MessageHandler, topic: Optional[str] = None
    ) -> None:
        """Register a delivery handler, optionally scoped to one topic."""
        self._handlers.append((topic, handler))

    def on_topic_message(self, handler: TopicMessageHandler) -> None:
        """Register a handler that also receives the pubsub topic."""
        self._topic_handlers.append(handler)

    def add_validator(
        self, validator: WakuValidator, topic: Optional[str] = None
    ) -> None:
        """Install a routing validator (e.g. the RLN checks).

        With ``topic=None`` the validator applies to every joined topic;
        per-topic validators implement the paper's one-RLN-group-per-
        topic structure.
        """
        self._validators.append((topic, validator))

    def publish(
        self, message: WakuMessage, topic: Optional[str] = None
    ) -> str:
        """Publish an envelope; returns the message ID."""
        target = topic or self.pubsub_topic
        if target not in self._topics:
            raise GossipError(f"not a member of topic {target!r}")
        return self.router.publish(target, message.to_bytes())

    # -- plumbing ------------------------------------------------------------------

    def _decode(self, payload: Any) -> Optional[WakuMessage]:
        if isinstance(payload, WakuMessage):
            return payload
        if isinstance(payload, bytes):
            if payload in self._decode_cache:
                self._decode_cache.move_to_end(payload)
                return self._decode_cache[payload]
            try:
                message: Optional[WakuMessage] = WakuMessage.from_bytes(
                    payload
                )
            except SerializationError:
                message = None
            self._decode_cache[payload] = message
            while len(self._decode_cache) > DECODE_CACHE_SIZE:
                self._decode_cache.popitem(last=False)
            return message
        return None

    def _validate(self, topic: str, payload: Any) -> ValidationResult:
        message = self._decode(payload)
        if message is None:
            return ValidationResult.REJECT
        for scope, validator in self._validators:
            if scope is not None and scope != topic:
                continue
            result = validator(message)
            if result is not ValidationResult.ACCEPT:
                return result
        return ValidationResult.ACCEPT

    def _on_delivery(
        self, topic: str, payload: Any, msg_id: str, from_peer: NodeId
    ) -> None:
        del from_peer  # handlers must not see the previous hop
        message = self._decode(payload)
        if message is None:
            return
        for scope, handler in self._handlers:
            if scope is None or scope == topic:
                handler(message, msg_id)
        for topic_handler in self._topic_handlers:
            topic_handler(topic, message, msg_id)
