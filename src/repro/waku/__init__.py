"""Waku-Relay: anonymous pub/sub envelopes over GossipSub."""

from .message import DEFAULT_PUBSUB_TOPIC, WakuMessage
from .relay import MessageHandler, WakuRelayNode, WakuValidator

__all__ = [
    "WakuMessage",
    "DEFAULT_PUBSUB_TOPIC",
    "WakuRelayNode",
    "MessageHandler",
    "WakuValidator",
]
