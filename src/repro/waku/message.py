"""The anonymized Waku message.

Waku-Relay achieves sender anonymity by *omission* (paper Section I):
protocol messages carry no IP address, no signature, no sender key — a
message is just a content topic, an opaque payload and a protocol
version. The optional RLN fields of Waku-RLN-Relay travel in
``rate_limit_proof`` (the serialized :class:`~repro.rln.RlnSignal`),
which is itself zero-knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import SerializationError

#: Default Waku v2 pubsub topic.
DEFAULT_PUBSUB_TOPIC = "/waku/2/default-waku/proto"


@dataclass(frozen=True)
class WakuMessage:
    """A Waku v2 message envelope (PII-free by construction)."""

    payload: bytes
    content_topic: str = "/repro/1/chat/proto"
    version: int = 1
    #: Serialized RLN signal; present only under Waku-RLN-Relay.
    rate_limit_proof: Optional[bytes] = None

    def to_bytes(self) -> bytes:
        """Length-prefixed wire encoding."""
        topic_bytes = self.content_topic.encode()
        proof = self.rate_limit_proof or b""
        return (
            self.version.to_bytes(1, "big")
            + len(topic_bytes).to_bytes(2, "big")
            + topic_bytes
            + len(self.payload).to_bytes(4, "big")
            + self.payload
            + len(proof).to_bytes(4, "big")
            + proof
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "WakuMessage":
        try:
            version = data[0]
            offset = 1
            topic_len = int.from_bytes(data[offset : offset + 2], "big")
            offset += 2
            content_topic = data[offset : offset + topic_len].decode()
            offset += topic_len
            payload_len = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
            payload = data[offset : offset + payload_len]
            offset += payload_len
            proof_len = int.from_bytes(data[offset : offset + 4], "big")
            offset += 4
            proof = data[offset : offset + proof_len]
            if offset + proof_len != len(data):
                raise SerializationError("trailing bytes in WakuMessage")
        except (IndexError, UnicodeDecodeError) as exc:
            raise SerializationError(f"malformed WakuMessage: {exc}") from exc
        return cls(
            payload=payload,
            content_topic=content_topic,
            version=version,
            rate_limit_proof=proof if proof else None,
        )

    @property
    def size_bytes(self) -> int:
        return len(self.to_bytes())
